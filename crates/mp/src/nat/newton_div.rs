//! Newton-iteration reciprocal division — the `DivBackend::Newton`
//! kernel.
//!
//! Knuth's Algorithm D ([`super::div`]) computes one quotient limb per
//! pass over the divisor: `O(q·n)` limb operations for a `q`-limb
//! quotient and an `n`-limb divisor. In the subresultant remainder
//! phase both are thousands of limbs, so division dominates the solve
//! even after the multiplication stack went subquadratic. This module
//! replaces the per-limb loop with a handful of big multiplications:
//!
//! 1. **Reciprocal.** Compute `x ≈ ⌊2^(t+p)/v⌋` (where `t = ‖v‖` and
//!    `p` is the needed quotient precision plus guard bits) by the
//!    integer Newton iteration
//!
//!    ```text
//!    x ← 2^(p−p')·2·x' − ⌊x'²·v / 2^(t+2p'−p)⌋,
//!    ```
//!
//!    doubling the precision `p'` of the previous estimate `x'` each
//!    step. Operands are truncated to the precision they contribute
//!    (the divisor to its top `p + guard` bits), so the total cost is a
//!    constant number of multiplications at the final size — each
//!    through [`super::mul_auto`]/[`super::sqr_auto`], inheriting
//!    Karatsuba and any future kernel.
//! 2. **Quotient.** `q = ⌊u·x / 2^(t+p)⌋` underestimates `⌊u/v⌋` by at
//!    most one (the iteration is biased to underestimate; see the
//!    `+2` correction below), so one exact `r = u − q·v` followed by a
//!    short correction loop lands on `0 ≤ r < v`.
//!
//! The correction loop is also the safety net: the result is exact by
//! construction regardless of the error analysis, and if the estimate
//! were ever further off than expected the loop falls back to Algorithm
//! D on the residual after [`MAX_CORRECTIONS`] steps, so the worst case
//! is schoolbook cost, never a wrong answer. The differential suite in
//! `tests/div_diff.rs` holds this kernel bit-for-bit equal to Algorithm
//! D across ~15k generated and adversarial cases.
//!
//! ## Exact division: the 2-adic (Hensel) variant
//!
//! The remainder phase's divisions are all *exact* (Collins'
//! subresultant theory), and an exact division needs no remainder and no
//! high-order information at all: with `v = v'·2^z` (`v'` odd) and
//! `u = q·v`, the quotient is recovered from the **low** limbs alone as
//! `q = (u/2^z)·v'⁻¹ mod 2^(64k)` where `k` bounds the quotient limbs.
//! [`div_exact`] computes `v'⁻¹ mod 2^(64k)` by the Newton–Hensel
//! iteration `x ← x·(2 − v'·x)` (each step doubles the correct low
//! limbs; all products truncated to the target width), then one low
//! product finishes the job — `O(M(k))` total, with **no** dependence on
//! the divisor length, versus Algorithm D's `k·‖v‖` limb operations.
//! Unlike the reciprocal path there is no estimate and no correction
//! loop: the 2-adic inverse is exact by construction, so the result is
//! the unique quotient whenever the division is exact (debug-asserted).
//!
//! [`crate::ExactDivisor`] caches the inverse across divisions by the
//! same divisor — the remainder sequence divides every coefficient of an
//! iteration by the same `c²`, so the amortized cost per division is a
//! single truncated multiplication.
//!
//! Like the multiplication kernels, these functions record **nothing**
//! in the paper cost model: `Int::div_rem` charges the Algorithm D work
//! estimate before any kernel runs, so `CostSnapshot` is invariant
//! under `RR_DIV` by construction. What physically ran is recorded in
//! [`crate::metrics::NewtonDivStats`] and, for traced solves, a `"div"`
//! span.

use super::{add, add_assign, bit_len, cmp, div, is_zero, mul_auto, normalized, shl, shr, sqr_auto,
            sub, sub_assign, trailing_zeros};
use crate::limb::{DoubleLimb, Limb, LIMB_BITS};
use std::cmp::Ordering;

/// Limb count (of both the divisor and the quotient) at or above which
/// the Newton path beats Algorithm D. Below it the reciprocal's fixed
/// multiplication count loses to the tight schoolbook loop.
///
/// Calibrated with `cargo run --release -p rr-bench --bin div_ablation
/// -- --sweep` (see EXPERIMENTS.md "Newton division crossover"); the
/// crossover sits lower when the `Fast` multiplication kernel is
/// active, so this threshold is chosen for the paired configuration.
pub const NEWTON_DIV_THRESHOLD: usize = 24;

/// Guard bits of reciprocal precision beyond the quotient length:
/// absorbs the truncation of the divisor and the floor of every shift,
/// keeping the quotient estimate within one of the true quotient.
const GUARD: u64 = 32;

/// Fractional precision at or below which the reciprocal is seeded
/// directly from the divisor's top limb via `u128` division.
const SEED_BITS: u64 = 30;

/// Correction steps after which the estimate is declared bad and the
/// residual is finished with Algorithm D. Never expected to trigger
/// (the analysis bounds corrections by 1); it bounds the worst case at
/// schoolbook cost instead of a long subtraction loop.
const MAX_CORRECTIONS: u64 = 16;

/// Divides `u` by `v` with the Newton reciprocal above
/// [`NEWTON_DIV_THRESHOLD`], falling through to [`div::div_rem`] below
/// it; returns `(quotient, remainder)` bit-identical to Algorithm D.
///
/// # Panics
/// Panics if `v` is zero.
pub fn div_rem(u: &[Limb], v: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    div_rem_with_threshold(u, v, NEWTON_DIV_THRESHOLD)
}

/// [`div_rem`] with an explicit crossover threshold.
///
/// The differential tests drive this with tiny thresholds to force the
/// Newton path onto small operands; `threshold` is clamped to ≥ 2.
pub fn div_rem_with_threshold(
    u: &[Limb],
    v: &[Limb],
    threshold: usize,
) -> (Vec<Limb>, Vec<Limb>) {
    assert!(!is_zero(v), "division by zero");
    if cmp(u, v) == Ordering::Less {
        return (Vec::new(), u.to_vec());
    }
    let threshold = threshold.max(2);
    // Newton pays only when both the divisor and the quotient are long:
    // Algorithm D's cost is (quotient limbs)·(divisor limbs), so a short
    // quotient over a huge divisor is already cheap schoolbook.
    let q_limbs = u.len() + 1 - v.len();
    if v.len() < threshold || q_limbs < threshold {
        return div::div_rem(u, v);
    }
    newton_div_rem(u, v)
}

/// The Newton path proper; requires `u ≥ v > 0` and large operands.
fn newton_div_rem(u: &[Limb], v: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let t = bit_len(v);
    let ub = bit_len(u);
    let _span = rr_obs::span("div", "newton")
        .with_arg("u_bits", ub)
        .with_arg("v_bits", t);

    // Quotient bit bound g (u < 2^(t+g)); reciprocal precision p.
    let g = ub - t + 1;
    let p = g + GUARD;
    let mut iters = 0u64;
    let x = recip(v, t, p, &mut iters);

    // q = ⌊u·x / 2^(t+p)⌋ ≤ ⌊u/v⌋ since x ≤ 2^(t+p)/v. Only the top
    // g + GUARD bits of u contribute: truncating u (another downward
    // bias, so the estimate still never overshoots) adds at most
    // 2^(1−GUARD) to the undershoot while shrinking the estimate's
    // multiplication from ‖u‖×p to p×p bits.
    let e = ub.saturating_sub(g + GUARD);
    let ut = shr(u, e);
    let mut q = shr(&mul_auto(&ut, &x), t + p - e);
    let mut qv = mul_auto(&q, v);

    // Defensive downward pass: unreachable while x underestimates, but
    // exactness must not depend on the error analysis.
    let mut corrections = 0u64;
    while cmp(&qv, u) == Ordering::Greater {
        sub_assign(&mut qv, v);
        sub_assign(&mut q, &[1]);
        corrections += 1;
    }
    let mut r = sub(u, &qv);
    while cmp(&r, v) != Ordering::Less {
        corrections += 1;
        if corrections > MAX_CORRECTIONS {
            // The estimate was badly off (never expected): finish the
            // residual with Algorithm D rather than subtracting forever.
            let (q2, r2) = div::div_rem(&r, v);
            q = add(&q, &q2);
            r = r2;
            break;
        }
        sub_assign(&mut r, v);
        add_assign(&mut q, &[1]);
    }
    crate::metrics::record_newton_div(iters, corrections);
    (q, r)
}

/// Reciprocal `x ≈ ⌊2^(t+p)/v⌋` for `t = ‖v‖`, by precision-doubling
/// Newton iteration. Never overestimates, and underestimates by at most
/// a few ulps (the `+2` below over-corrects every floor and truncation
/// upward bias; the recursion step `p' = p/2 + 5` keeps the squared
/// absolute error contracting). Increments `*iters` per refinement.
fn recip(v: &[Limb], t: u64, p: u64, iters: &mut u64) -> Vec<Limb> {
    if p <= SEED_BITS {
        // Seed from the top h ≤ 64 bits of v: ⌊2^(h+p)/(vh+1)⌋
        // underestimates 2^(t+p)/v because v < (vh+1)·2^(t−h).
        let h = t.min(64);
        let vh = shr(v, t - h).first().copied().unwrap_or(0) as u128;
        let x = (1u128 << (h + p)) / (vh + 1);
        return normalized(vec![x as Limb, (x >> 64) as Limb]);
    }
    let ph = p / 2 + 5;
    let xh = recip(v, t, ph, iters);
    *iters += 1;

    // Truncate the divisor to the top p + GUARD bits it contributes.
    let s = t.saturating_sub(p + GUARD);
    let vt = shr(v, s);

    // x = 2·2^(p−p')·x' − ⌊x'²·vt / 2^(t+2p'−p−s)⌋ − 2.
    let first = shl(&xh, p - ph + 1);
    let prod = mul_auto(&sqr_auto(&xh), &vt);
    let term = add(&shr(&prod, t + 2 * ph - p - s), &[2]);
    if cmp(&first, &term) == Ordering::Less {
        // Numerically impossible per the error analysis; return the
        // trivial underestimate 2^p ≤ 2^(t+p)/v so the caller's
        // correction fallback still produces an exact result.
        return shl(&[1], p);
    }
    sub(&first, &term)
}

// ---------------------------------------------------------------------
// 2-adic (Hensel) exact division
// ---------------------------------------------------------------------

/// Quotient limb count at or above which the 2-adic exact path beats
/// Algorithm D (its cost depends only on the quotient length, so the
/// divisor-side gate is much laxer than [`NEWTON_DIV_THRESHOLD`]).
///
/// Calibrated with `div_ablation --sweep` (EXPERIMENTS.md).
pub const NEWTON_EXACT_THRESHOLD: usize = 16;

/// Truncates/zero-pads `v` to exactly `n` limbs (fixed-width word of the
/// ring `ℤ/2^(64n)`; high limbs may be zero). The production paths write
/// fixed-width words in place; this remains the tests' reference shape.
#[cfg(test)]
fn low(mut v: Vec<Limb>, n: usize) -> Vec<Limb> {
    v.truncate(n);
    v.resize(n, 0);
    v
}

/// Low-product size below which the half-triangle schoolbook loop beats
/// the split recursion (whose half-size full product only turns
/// subquadratic once it clears the Karatsuba threshold).
const MUL_LOW_SCHOOL_LIMBS: usize = 96;

/// `a·b mod 2^(64n)` as a fixed-width `n`-limb word. Inputs longer than
/// `n` limbs are truncated first (their high limbs cannot affect the
/// result).
///
/// This is a genuine *low product*, not a truncated full product: the
/// schoolbook base case only walks the half-triangle of limb products
/// below column `n` (~n²/2 hardware muls where Algorithm D's back-
/// substitution does ~n²), and above [`MUL_LOW_SCHOOL_LIMBS`] it splits
/// as `a·b ≡ a0·b0 + 2^(64h)·(a0·b1 + a1·b0) (mod 2^(64n))` — one
/// half-size full product through the active (possibly Karatsuba)
/// kernel plus two half-size low products.
pub(crate) fn mul_low(a: &[Limb], b: &[Limb], n: usize) -> Vec<Limb> {
    let mut out = Vec::new();
    mul_low_into(a, b, n, &mut out);
    out
}

/// [`mul_low`] writing into `out` (cleared and fully overwritten; dirty
/// scratch buffers are valid destinations). The recursion's temporaries
/// come from the scratch arena.
pub(crate) fn mul_low_into(a: &[Limb], b: &[Limb], n: usize, out: &mut Vec<Limb>) {
    let a = &a[..a.len().min(n)];
    let b = &b[..b.len().min(n)];
    let an = a.len() - a.iter().rev().take_while(|&&l| l == 0).count();
    let bn = b.len() - b.iter().rev().take_while(|&&l| l == 0).count();
    if an == 0 || bn == 0 {
        out.clear();
        out.resize(n, 0);
        return;
    }
    // Small or heavily unbalanced: the triangle loop is near-optimal
    // (cost ~min(an,bn)·n) and has no recursion overhead.
    if n <= MUL_LOW_SCHOOL_LIMBS || an.min(bn) * 8 < n {
        mul_low_school_into(&a[..an], &b[..bn], n, out);
        return;
    }
    // h = ⌈n/2⌉ so the dropped a1·b1 term lands at offset 2h ≥ n.
    let h = n.div_ceil(2);
    let (a0, a1) = a.split_at(h.min(a.len()));
    let (b0, b1) = b.split_at(h.min(b.len()));
    // a0·b0 in full (2h ≥ n limbs of it are kept), via the active
    // backend's full-product kernel; one scratch buffer serves the full
    // product and then both recursive low products in turn.
    let mut p = crate::scratch::take(a0.len() + b0.len());
    super::mul_auto_into(a0, b0, &mut p);
    out.clear();
    out.extend_from_slice(&p[..p.len().min(n)]);
    out.resize(n, 0);
    let rest = n - h;
    mul_low_into(a0, b1, rest, &mut p);
    add_shifted_mod(out, &p, h);
    mul_low_into(a1, b0, rest, &mut p);
    add_shifted_mod(out, &p, h);
    crate::scratch::put(p);
}

/// Schoolbook low product written into `out`: accumulate only the limb
/// products landing in columns `< n`. Operands must be free of high
/// zero limbs.
fn mul_low_school_into(a: &[Limb], b: &[Limb], n: usize, out: &mut Vec<Limb>) {
    out.clear();
    out.resize(n, 0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let jmax = b.len().min(n - i);
        let mut carry: Limb = 0;
        for j in 0..jmax {
            let t = out[i + j] as DoubleLimb
                + ai as DoubleLimb * b[j] as DoubleLimb
                + carry as DoubleLimb;
            out[i + j] = t as Limb;
            carry = (t >> LIMB_BITS) as Limb;
        }
        let mut idx = i + jmax;
        while carry != 0 && idx < n {
            let (s, o) = out[idx].overflowing_add(carry);
            out[idx] = s;
            carry = o as Limb;
            idx += 1;
        }
    }
}

/// `out += p·2^(64h) mod 2^(64·out.len())`, wrapping.
pub(crate) fn add_shifted_mod(out: &mut [Limb], p: &[Limb], h: usize) {
    let mut carry: Limb = 0;
    for (j, &pj) in p.iter().enumerate() {
        let Some(slot) = out.get_mut(h + j) else { break };
        let t = *slot as DoubleLimb + pj as DoubleLimb + carry as DoubleLimb;
        *slot = t as Limb;
        carry = (t >> LIMB_BITS) as Limb;
    }
    let mut idx = h + p.len();
    while carry != 0 && idx < out.len() {
        let (s, o) = out[idx].overflowing_add(carry);
        out[idx] = s;
        carry = o as Limb;
        idx += 1;
    }
}

/// `(a − b) mod 2^(64n)` as a fixed-width `n`-limb word (wrapping).
pub(crate) fn mod_sub(a: &[Limb], b: &[Limb], n: usize) -> Vec<Limb> {
    let mut out = Vec::new();
    mod_sub_into(a, b, n, &mut out);
    out
}

/// [`mod_sub`] writing into `out` (cleared and fully overwritten; dirty
/// scratch buffers are valid destinations). `out` must not alias either
/// operand (enforced by the borrow checker for safe callers).
pub(crate) fn mod_sub_into(a: &[Limb], b: &[Limb], n: usize, out: &mut Vec<Limb>) {
    out.clear();
    out.resize(n, 0);
    let mut borrow = false;
    for (i, slot) in out.iter_mut().enumerate() {
        let ai = a.get(i).copied().unwrap_or(0);
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow as Limb);
        *slot = d2;
        borrow = b1 | b2;
    }
}

/// `a −= b mod 2^(64·a.len())`, wrapping in place. Limbs of `b` beyond
/// `a.len()` cannot affect the result and are ignored.
pub(crate) fn mod_sub_assign(a: &mut [Limb], b: &[Limb]) {
    let mut borrow = false;
    for (i, slot) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = slot.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow as Limb);
        *slot = d2;
        borrow = b1 | b2;
    }
}

/// Inverse of an odd limb mod 2^64: seed correct to 5 bits, then four
/// Newton steps (`x ← x·(2 − v·x)`, bits double each step).
pub(crate) fn inv_limb(v0: Limb) -> Limb {
    debug_assert!(v0 & 1 == 1);
    let mut x = v0.wrapping_mul(3) ^ 2;
    for _ in 0..4 {
        x = x.wrapping_mul(2u64.wrapping_sub(v0.wrapping_mul(x)));
    }
    debug_assert_eq!(v0.wrapping_mul(x), 1);
    x
}

/// `v⁻¹ mod 2^(64n)` for odd `v`, as a fixed-width `n`-limb word, by
/// limb-doubling Newton–Hensel iteration. `*steps` counts refinements.
pub fn inv_2adic(v: &[Limb], n: usize, steps: &mut u64) -> Vec<Limb> {
    debug_assert!(v.first().is_some_and(|l| l & 1 == 1), "2-adic inverse needs an odd divisor");
    let mut x = vec![inv_limb(v[0])];
    extend_inv_2adic(v, &mut x, n, steps);
    x
}

/// Extends a fixed-width partial inverse (`v·x ≡ 1 mod 2^(64·x.len())`)
/// to `n` limbs in place. The 2-adic inverse is unique, so the existing
/// limbs are a stable prefix — this is what lets [`crate::ExactDivisor`]
/// grow its cache monotonically.
pub(crate) fn extend_inv_2adic(v: &[Limb], x: &mut Vec<Limb>, n: usize, steps: &mut u64) {
    if x.len() >= n {
        return;
    }
    // Two scratch buffers serve every doubling step: `t` holds v·x, then
    // is reused for 2x; `xt` holds x·(v·x).
    let mut t = crate::scratch::take(n);
    let mut xt = crate::scratch::take(n);
    while x.len() < n {
        let target = (x.len() * 2).min(n);
        *steps += 1;
        // x ← x·(2 − v·x) = 2x − x·(v·x), all mod 2^(64·target).
        mul_low_into(v, x, target, &mut t);
        mul_low_into(x, &t, target, &mut xt);
        // t := 2x mod 2^(64·target); x.len() < target, so the shifted-out
        // top bit always has a limb to land in.
        t.clear();
        t.resize(target, 0);
        let mut carry: Limb = 0;
        for (i, &xi) in x.iter().enumerate() {
            t[i] = (xi << 1) | carry;
            carry = xi >> (LIMB_BITS - 1);
        }
        t[x.len()] = carry;
        mod_sub_into(&t, &xt, target, x);
    }
    crate::scratch::put(xt);
    crate::scratch::put(t);
}

/// Exact division via the 2-adic inverse above
/// [`NEWTON_EXACT_THRESHOLD`], falling through to [`div::div_exact`]
/// below it. The quotient is bit-identical to Algorithm D's whenever the
/// division is exact (debug-asserted; an inexact call is a caller bug,
/// as for [`div::div_exact`]).
///
/// # Panics
/// Panics if `v` is zero.
pub fn div_exact(u: &[Limb], v: &[Limb]) -> Vec<Limb> {
    div_exact_with_threshold(u, v, NEWTON_EXACT_THRESHOLD)
}

/// [`div_exact`] with an explicit crossover threshold (clamped to ≥ 2);
/// the differential tests force the 2-adic path onto small operands.
pub fn div_exact_with_threshold(u: &[Limb], v: &[Limb], threshold: usize) -> Vec<Limb> {
    assert!(!is_zero(v), "division by zero");
    if is_zero(u) {
        return Vec::new();
    }
    let threshold = threshold.max(2);
    let k = (u.len() + 1).saturating_sub(v.len());
    if k < threshold || v.len() < 2 {
        return div::div_exact(u, v);
    }
    let _span = rr_obs::span("div", "newton-exact")
        .with_arg("u_bits", bit_len(u))
        .with_arg("v_bits", bit_len(v));

    // Strip the divisor's power of two; exactness means u carries it too.
    let zv = trailing_zeros(v).unwrap_or(0);
    let (us, vs);
    let (u2, v2): (&[Limb], &[Limb]) = if zv > 0 {
        us = shr(u, zv);
        vs = shr(v, zv);
        (&us, &vs)
    } else {
        (u, v)
    };
    let k2 = (u2.len() + 1).saturating_sub(v2.len()).max(1);
    let mut steps = 0u64;
    let inv = inv_2adic(v2, k2, &mut steps);
    let q = normalized(mul_low(u2, &inv, k2));
    crate::metrics::record_newton_exact_div(steps);
    debug_assert_eq!(
        mul_auto(&q, v2),
        normalized(u2.to_vec()),
        "div_exact called with inexact quotient"
    );
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat;

    /// Independent invariant check: `u = q·v + r`, `0 ≤ r < v`.
    fn check(u: &[Limb], v: &[Limb], threshold: usize) {
        let (q, r) = div_rem_with_threshold(u, v, threshold);
        assert!(is_zero(&r) || cmp(&r, v) == Ordering::Less, "r < v");
        let recomposed = nat::add(&nat::mul::mul(&q, v), &r);
        assert_eq!(recomposed, nat::normalized(u.to_vec()));
        // And bit-identical to Algorithm D.
        assert_eq!((q, r), div::div_rem(u, v));
    }

    fn rng_limbs(state: &mut u64, len: usize) -> Vec<Limb> {
        let mut next = || {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *state
        };
        nat::normalized((0..len).map(|_| next()).collect())
    }

    #[test]
    fn forced_newton_matches_schoolbook() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for (lu, lv) in [(8usize, 4usize), (16, 8), (24, 12), (40, 20), (64, 24)] {
            let u = rng_limbs(&mut state, lu);
            let v = rng_limbs(&mut state, lv);
            if !is_zero(&v) {
                check(&u, &v, 2);
            }
        }
    }

    #[test]
    fn all_ones_divisor() {
        // Divisors of all-ones limbs maximize qhat refinement in
        // Algorithm D and stress the reciprocal's truncation bias.
        let v = vec![u64::MAX; 8];
        let mut state = 7u64;
        let u = rng_limbs(&mut state, 20);
        check(&u, &v, 2);
        check(&v, &v, 2);
    }

    #[test]
    fn exact_products_and_off_by_one() {
        // u = v·q, v·q + 1, v·q − 1: remainder 0, 1, and v−1 paths.
        let mut state = 42u64;
        let v = rng_limbs(&mut state, 10);
        let q = rng_limbs(&mut state, 12);
        let p = nat::mul::mul(&v, &q);
        check(&p, &v, 2);
        check(&nat::add(&p, &[1]), &v, 2);
        check(&nat::sub(&p, &[1]), &v, 2);
    }

    #[test]
    fn below_threshold_falls_through() {
        // Small operands take the Algorithm D path through the same
        // entry point (trivially identical, but pins the gate).
        let u = vec![123u64, 456, 789];
        let v = vec![7u64, 9];
        assert_eq!(div_rem(&u, &v), div::div_rem(&u, &v));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = div_rem_with_threshold(&[5], &[0, 1], 2);
        assert!(is_zero(&q));
        assert_eq!(r, vec![5]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        div_rem(&[5], &[]);
    }

    #[test]
    fn low_product_matches_truncated_full_product() {
        // Exercises the schoolbook triangle, the split recursion (n well
        // above MUL_LOW_SCHOOL_LIMBS), the unbalanced fallback, and
        // truncation of over-long inputs.
        let mut state = 0xdead_beefu64;
        for (la, lb, n) in [
            (3usize, 3usize, 4usize),
            (10, 10, 8),
            (50, 50, 96),
            (70, 90, 100),
            (120, 120, 128),
            (200, 4, 200), // unbalanced: min(an,bn)·8 < n
            (160, 150, 200),
            (300, 280, 300),
            (400, 100, 300), // a longer than n: high limbs truncated
            (100, 100, 97),  // odd n through the split recursion
            (150, 150, 131),
            (260, 255, 255),
        ] {
            let a = rng_limbs(&mut state, la);
            let b = rng_limbs(&mut state, lb);
            let got = mul_low(&a, &b, n);
            let want = low(nat::mul::mul(&a, &b), n);
            assert_eq!(got, want, "la={la} lb={lb} n={n}");
            assert_eq!(got.len(), n, "fixed width");
        }
        // Zero operands.
        assert_eq!(mul_low(&[], &[1, 2], 3), vec![0; 3]);
        assert_eq!(mul_low(&[0, 0], &[1], 2), vec![0; 2]);
        // All-ones stress (max carries in the triangle loop).
        let ones = vec![u64::MAX; 150];
        assert_eq!(
            mul_low(&ones, &ones, 140),
            low(nat::mul::mul(&ones, &ones), 140)
        );
    }

    #[test]
    fn limb_inverse_is_exact() {
        for v in [1u64, 3, 5, 0xffff_ffff_ffff_ffff, 0x9e37_79b9_7f4a_7c15 | 1] {
            assert_eq!(v.wrapping_mul(inv_limb(v)), 1, "v={v:#x}");
        }
    }

    #[test]
    fn two_adic_inverse_is_prefix_stable() {
        let mut state = 99u64;
        let mut v = rng_limbs(&mut state, 12);
        v[0] |= 1;
        let mut s = 0u64;
        let full = inv_2adic(&v, 32, &mut s);
        // Extending a shorter inverse reproduces the longer one limb for
        // limb — the property the ExactDivisor cache depends on.
        let mut partial = inv_2adic(&v, 5, &mut s);
        extend_inv_2adic(&v, &mut partial, 32, &mut s);
        assert_eq!(partial, full);
        // And v·inv ≡ 1 mod 2^(64·32).
        let prod = mul_low(&v, &full, 32);
        assert_eq!(normalized(prod), vec![1]);
    }

    #[test]
    fn exact_division_matches_algorithm_d() {
        let mut state = 0xdead_beefu64;
        for (lv, lq) in [(2usize, 2usize), (3, 30), (12, 10), (24, 40), (40, 64)] {
            let v = rng_limbs(&mut state, lv);
            let q = rng_limbs(&mut state, lq);
            if is_zero(&v) || is_zero(&q) {
                continue;
            }
            let u = nat::mul::mul(&v, &q);
            assert_eq!(div_exact_with_threshold(&u, &v, 2), q, "lv={lv} lq={lq}");
            assert_eq!(div_exact(&u, &v), q, "default threshold lv={lv} lq={lq}");
        }
    }

    #[test]
    fn exact_division_strips_powers_of_two() {
        // Even divisors exercise the shift-out path: v = odd·2^z.
        let mut state = 5u64;
        let odd = {
            let mut v = rng_limbs(&mut state, 6);
            v[0] |= 1;
            v
        };
        for z in [1u64, 63, 64, 130] {
            let v = shl(&odd, z);
            let q = rng_limbs(&mut state, 20);
            let u = nat::mul::mul(&v, &q);
            assert_eq!(div_exact_with_threshold(&u, &v, 2), q, "z={z}");
        }
    }

    #[test]
    fn exact_division_of_zero_and_identity() {
        assert!(is_zero(&div_exact(&[], &[7])));
        let v = vec![3u64; 30];
        let u = v.clone();
        assert_eq!(div_exact_with_threshold(&u, &v, 2), vec![1]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "div_exact called with inexact quotient")]
    fn exact_division_rejects_inexact() {
        let mut state = 8u64;
        let v = {
            let mut v = rng_limbs(&mut state, 8);
            v[0] |= 1;
            v
        };
        let q = rng_limbs(&mut state, 12);
        let u = nat::add(&nat::mul::mul(&v, &q), &[1]);
        div_exact_with_threshold(&u, &v, 2);
    }
}
