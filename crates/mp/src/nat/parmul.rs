//! Fork-join parallel multiplication — the `RR_PAR_MUL` kernel layer.
//!
//! The paper's parallelism lives *between* polynomial-level tasks, but
//! at n ≥ 64 the wall-clock of a single solve concentrates inside
//! individual huge-operand products: one Kronecker-packed multiply or
//! one 10⁴–10⁵-bit remainder-step multiply runs on one worker while the
//! rest of the pool idles. This module decomposes those products into
//! independent subproducts executed through [`rr_sched::join_here`] on
//! whatever pool scope is ambient on the calling thread — the same
//! per-solve scope that runs the polynomial-level tasks, so intra- and
//! inter-multiply parallelism share one worker set and one concurrency
//! cap.
//!
//! ## Split strategy
//!
//! Above [`PAR_MUL_THRESHOLD`] limbs (both operands) the kernel applies
//! the top-level Karatsuba decomposition and runs its three independent
//! subproducts as a fork-join pair tree: `z₁` inline on the submitting
//! worker, `z₀` and `z₂` as claimable subtasks. Each subproduct recurses
//! through the same split while its halves stay above the threshold,
//! then falls through to the serial Karatsuba kernel ([`super::kmul`]).
//! Very unbalanced products are first cut into balanced limb-block tiles
//! of the short operand's length (the same chunking as the serial
//! kernel); tiles are computed into per-tile buffers by a halving
//! fork-join tree and combined serially with the carry-propagating
//! [`kmul::add_at`]. Combination order never affects the limbs: an exact
//! integer product is unique, so the parallel kernels are bit-identical
//! to the serial ones by construction — the differential suite
//! (`crates/mp/tests/parmul_diff.rs`) holds them to that.
//!
//! ## Deadlock freedom and degradation
//!
//! [`rr_sched::join_here`] never blocks on an unclaimed subtask: the
//! submitter either retracts it and runs it inline, or — if another
//! worker claimed it — helps execute *other* join subtasks of the same
//! scope while waiting. With no ambient scope, or a single-worker pool
//! (`RR_POOL_THREADS=1`), both halves run inline with zero publication
//! overhead, so the kernel degrades to plain recursive Karatsuba.
//!
//! ## Scratch discipline
//!
//! The submitting worker takes every buffer that crosses the fork
//! (subproduct outputs, half-sums) from *its* arena and returns them
//! there — remote workers only write into those buffers. Temporaries
//! *inside* a claimed subtask come from the executing worker's own
//! arena, preserving the take/put-on-one-thread contract of
//! [`crate::scratch`].
//!
//! Like the serial kernels, nothing here records into the paper cost
//! model: [`crate::metrics`] charges each product once at the `Int`
//! layer before any kernel runs, which is what keeps `figs2_5`/`table1`
//! bit-identical across `RR_PAR_MUL`. What the splitter *executed* is
//! recorded separately via [`crate::metrics::record_parmul`].

use super::{kmul, trim};
use crate::limb::Limb;
use kmul::{add_at, trimmed};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Default granularity of the split layer, in limbs: a product engages
/// when its schoolbook-proxy work `a.len()·b.len()` can fund a fork of
/// threshold-sized subtasks (≥ 3·t² limb-pairs, see
/// `super::par_mul_engaged`), and no leaf subtask carries much less
/// than a t × t product's worth of work.
///
/// A 32×32-limb (2048-bit) product runs a microsecond-plus — above the
/// sub-microsecond publish/retract cost of a join subtask — and the
/// remainder-phase products this layer targets (10⁴–10⁵ bits at
/// n ≥ 64) sit well above the engage floor and split several levels
/// deep. Calibrated with `parmul_ablation --sweep` (see
/// EXPERIMENTS.md): 32 is the lowest setting whose single-worker
/// overhead stays within noise of `RR_PAR_MUL=off` at every measured
/// degree; lower settings (16) buy ~10 more points of remainder-phase
/// split coverage at a 20–30 % single-worker cost, worthwhile only
/// when idle workers are guaranteed (`RR_PAR_MUL_THRESHOLD=16`).
pub const PAR_MUL_THRESHOLD: usize = 32;

/// Process-wide override of [`PAR_MUL_THRESHOLD`]; 0 = not yet resolved
/// (resolve consults `RR_PAR_MUL_THRESHOLD` once).
static THRESHOLD: AtomicUsize = AtomicUsize::new(0);

/// The active split threshold: [`PAR_MUL_THRESHOLD`] unless overridden
/// by [`set_par_mul_threshold`] or the `RR_PAR_MUL_THRESHOLD`
/// environment variable (read once, first use).
pub fn par_mul_threshold() -> usize {
    match THRESHOLD.load(Ordering::Relaxed) {
        0 => {
            let t = std::env::var("RR_PAR_MUL_THRESHOLD")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&t: &usize| t >= 2)
                .unwrap_or(PAR_MUL_THRESHOLD);
            THRESHOLD.store(t, Ordering::Relaxed);
            t
        }
        t => t,
    }
}

/// Overrides the split threshold for this process — a calibration knob
/// for `parmul_ablation --sweep`, not a per-solve setting (use
/// `RR_PAR_MUL` / `SolverConfig::with_par_mul` to gate splitting).
/// Clamped to ≥ 2; values below the serial kernel's own thresholds
/// just burn fork overhead on tiny products.
pub fn set_par_mul_threshold(limbs: usize) {
    THRESHOLD.store(limbs.max(2), Ordering::Relaxed);
}

/// Ceiling on leaf subtasks per top-level product.
///
/// The engage threshold decides *whether* a product is worth splitting;
/// this decides *how far*. Without it a Kronecker-packed tree-phase
/// product (10³–10⁴ limbs) would recurse clear down to threshold-sized
/// confetti — thousands of publish/retract cycles per product for a
/// pool that is capped at 16 workers. Each recursion level divides the
/// remaining budget across its branches and splitting stops when the
/// budget can no longer fund a fork, so a product decomposes into at
/// most ~64 leaves, each ≳ 1/64th of the product — comfortably more
/// than the whole pool can claim, coarse enough that the per-fork cost
/// stays invisible next to the leaf work. Products near the engage
/// threshold get proportionally less: the top-level budget is scaled to
/// the schoolbook-proxy work (see [`task_budget`]) so no leaf ever
/// falls much below a `t × t` product's worth of work.
pub const PAR_MUL_TASK_BUDGET: usize = 64;

/// Top-level task budget for a product of `work = a.len()·b.len()`
/// limb-pairs: one budget unit per `t²` of work, capped at
/// [`PAR_MUL_TASK_BUDGET`]. Keeps leaf granularity roughly constant
/// (≈ one threshold-sized product per leaf) across the four decades of
/// product sizes the solver generates.
fn task_budget(work: usize) -> usize {
    let t = par_mul_threshold();
    PAR_MUL_TASK_BUDGET.min(work / (t * t))
}

/// Subtask/steal tally for one top-level product, shared across the
/// fork-join tree by reference (atomics: leaves run on other workers).
#[derive(Default)]
struct SplitCounters {
    tasks: AtomicU64,
    steals: AtomicU64,
}

/// Work/span bookkeeping for one open [`measured`] closure: what its
/// nested joins cost this thread locally (including any wait for a
/// thief) and what they amounted to as serial work / critical path.
#[derive(Default)]
struct Frame {
    local_ns: u64,
    work_ns: u64,
    span_ns: u64,
}

thread_local! {
    /// Stack of open measurement frames on this worker. Nested joins
    /// report into the innermost frame; a thief executing a claimed
    /// subtask opens its own frame on its own stack, so the accounting
    /// follows the closures wherever they run.
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` and returns its `(work, span)` in nanoseconds: `work` is
/// what `f` and everything it forked would cost executed serially,
/// `span` the longest dependency chain — its cost on unboundedly many
/// workers. Own (non-forked) time is wall-clock on the executing
/// worker; time spent *waiting* for a stolen half is excluded (the
/// enclosing frame's `local_ns` covers the whole `join_here` call,
/// while only the halves' measured work is added back).
fn measured(f: impl FnOnce()) -> (u64, u64) {
    FRAMES.with(|s| s.borrow_mut().push(Frame::default()));
    let t0 = Instant::now();
    f();
    let local = t0.elapsed().as_nanos() as u64;
    let fr = FRAMES.with(|s| s.borrow_mut().pop()).expect("frame pushed above");
    let own = local.saturating_sub(fr.local_ns);
    (own + fr.work_ns, own + fr.span_ns)
}

impl SplitCounters {
    /// Wraps one [`rr_sched::join_here`] call: counts the submitted
    /// subtask, whether another worker actually claimed it, and the
    /// fork's work/span contribution to the enclosing frame
    /// (`work(a) + work(b)` and `max(span(a), span(b))`).
    fn join(&self, a: impl FnOnce() + Send, b: impl FnOnce() + Send) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        // (work, span) slots for each half; the stolen-half stores are
        // ordered before the loads below by the join's completion
        // synchronization.
        let a_ws = (AtomicU64::new(0), AtomicU64::new(0));
        let b_ws = (AtomicU64::new(0), AtomicU64::new(0));
        let t0 = Instant::now();
        let stolen = {
            let (a_ws, b_ws) = (&a_ws, &b_ws);
            rr_sched::join_here(
                move || {
                    let (w, s) = measured(a);
                    a_ws.0.store(w, Ordering::Relaxed);
                    a_ws.1.store(s, Ordering::Relaxed);
                },
                move || {
                    let (w, s) = measured(b);
                    b_ws.0.store(w, Ordering::Relaxed);
                    b_ws.1.store(s, Ordering::Relaxed);
                },
            )
        };
        let local_ns = t0.elapsed().as_nanos() as u64;
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        let (wa, sa) = (a_ws.0.load(Ordering::Relaxed), a_ws.1.load(Ordering::Relaxed));
        let (wb, sb) = (b_ws.0.load(Ordering::Relaxed), b_ws.1.load(Ordering::Relaxed));
        FRAMES.with(|s| {
            if let Some(fr) = s.borrow_mut().last_mut() {
                fr.local_ns += local_ns;
                fr.work_ns += wa + wb;
                fr.span_ns += sa.max(sb);
            }
        });
    }
}

/// Product of two magnitudes, split across the ambient pool scope.
/// Matches [`kmul::mul_into`] bit-for-bit; same destination contract
/// (cleared and fully overwritten, dirty scratch buffers welcome,
/// no aliasing with the operands).
///
/// Callers gate on size and mode — see `super::par_mul_engaged`; calling
/// this below [`PAR_MUL_THRESHOLD`] is correct but pays the counter and
/// span overhead for a product the tree will not split.
pub fn mul_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>) {
    let (a, b) = (trimmed(a), trimmed(b));
    let _span = rr_obs::span("parmul", "mul")
        .with_arg("a_limbs", a.len() as u64)
        .with_arg("b_limbs", b.len() as u64);
    let counters = SplitCounters::default();
    let budget = task_budget(a.len() * b.len());
    let (work, span) = measured(|| mul_rec(a, b, out, &counters, budget));
    record(&counters, super::bit_len(a).max(super::bit_len(b)), work, span);
}

/// Square of a magnitude, split across the ambient pool scope. Matches
/// [`kmul::square_into`] bit-for-bit.
pub fn square_into(a: &[Limb], out: &mut Vec<Limb>) {
    let a = trimmed(a);
    let _span = rr_obs::span("parmul", "sqr").with_arg("a_limbs", a.len() as u64);
    let counters = SplitCounters::default();
    let budget = task_budget(a.len() * a.len());
    let (work, span) = measured(|| sqr_rec(a, out, &counters, budget));
    record(&counters, super::bit_len(a), work, span);
}

/// Flushes one finished fork-join tree into the execution stats — only
/// if it actually split (a gated call that fell straight through to the
/// serial kernel is not a parallel product).
fn record(c: &SplitCounters, operand_bits: u64, work_ns: u64, span_ns: u64) {
    let tasks = c.tasks.load(Ordering::Relaxed);
    if tasks > 0 {
        crate::metrics::record_parmul(
            tasks,
            c.steals.load(Ordering::Relaxed),
            operand_bits,
            work_ns,
            span_ns,
        );
    }
}

/// Recursive splitter. `a` and `b` are trimmed; falls through to the
/// serial Karatsuba kernel once the schoolbook-proxy work drops below
/// a threshold-sized product or the remaining task `budget` cannot
/// fund another three-way fork.
fn mul_rec(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>, c: &SplitCounters, budget: usize) {
    let t = par_mul_threshold();
    if budget < 3 || a.len() * b.len() < t * t {
        kmul::mul_into(a, b, out);
        return;
    }
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if long.len() >= 2 * short.len() {
        mul_tiled(long, short, out, c, budget);
        return;
    }

    // Balanced: the three-product Karatsuba split of kmul::karatsuba,
    // with z₀ and z₂ claimable by other workers and z₁ — the largest
    // subproduct — on the submitting worker. The half-sums are linear
    // work, computed here before the fork.
    let m = long.len() / 2;
    let (a0, a1) = (trimmed(&long[..m]), trimmed(&long[m..]));
    let (b0, b1) = (trimmed(&short[..m]), trimmed(&short[m..]));
    let mut sa = crate::scratch::take(a0.len().max(a1.len()) + 1);
    super::add_into(a0, a1, &mut sa);
    let mut sb = crate::scratch::take(b0.len().max(b1.len()) + 1);
    super::add_into(b0, b1, &mut sb);
    let mut z0 = crate::scratch::take(a0.len() + b0.len());
    let mut z2 = crate::scratch::take(a1.len() + b1.len());
    let mut z1 = crate::scratch::take(sa.len() + sb.len());
    {
        let (z0_ref, z2_ref, z1_ref) = (&mut z0, &mut z2, &mut z1);
        let (sa_ref, sb_ref) = (&sa[..], &sb[..]);
        let sub = budget / 3;
        c.join(
            || {
                // Nested pair: z₀ inline on whoever runs this closure,
                // z₂ claimable by a third worker.
                c.join(
                    || mul_rec(a0, b0, z0_ref, c, sub),
                    || mul_rec(a1, b1, z2_ref, c, sub),
                );
            },
            || mul_rec(sa_ref, sb_ref, z1_ref, c, sub),
        );
    }
    super::sub_assign(&mut z1, &z0);
    super::sub_assign(&mut z1, &z2);

    out.clear();
    out.resize(long.len() + short.len(), 0);
    add_at(out, 0, &z0);
    add_at(out, m, &z1);
    add_at(out, 2 * m, &z2);
    trim(out);
    crate::scratch::put(z1);
    crate::scratch::put(z2);
    crate::scratch::put(z0);
    crate::scratch::put(sb);
    crate::scratch::put(sa);
}

/// Recursive squaring splitter: the same tree with both operands equal,
/// so every subproduct is itself a square.
fn sqr_rec(a: &[Limb], out: &mut Vec<Limb>, c: &SplitCounters, budget: usize) {
    if budget < 3 || a.len() < par_mul_threshold() {
        kmul::square_into(a, out);
        return;
    }
    let m = a.len() / 2;
    let (a0, a1) = (trimmed(&a[..m]), trimmed(&a[m..]));
    let mut s = crate::scratch::take(a0.len().max(a1.len()) + 1);
    super::add_into(a0, a1, &mut s);
    let mut z0 = crate::scratch::take(2 * a0.len());
    let mut z2 = crate::scratch::take(2 * a1.len());
    let mut z1 = crate::scratch::take(2 * s.len());
    {
        let (z0_ref, z2_ref, z1_ref) = (&mut z0, &mut z2, &mut z1);
        let s_ref = &s[..];
        let sub = budget / 3;
        c.join(
            || {
                c.join(|| sqr_rec(a0, z0_ref, c, sub), || sqr_rec(a1, z2_ref, c, sub));
            },
            || sqr_rec(s_ref, z1_ref, c, sub),
        );
    }
    super::sub_assign(&mut z1, &z0);
    super::sub_assign(&mut z1, &z2);

    out.clear();
    out.resize(2 * a.len(), 0);
    add_at(out, 0, &z0);
    add_at(out, m, &z1);
    add_at(out, 2 * m, &z2);
    trim(out);
    crate::scratch::put(z1);
    crate::scratch::put(z2);
    crate::scratch::put(z0);
    crate::scratch::put(s);
}

/// Unbalanced product (`long.len() ≥ 2·short.len()`): cuts `long` into
/// tiles, computes every tile × `short` product in parallel into its
/// own buffer, then combines serially — the carry chains of
/// [`kmul::add_at`] overlap between neighbouring tiles, so the combine
/// is the one part that stays sequential (it is linear; the tile
/// products are the quadratic-ish work).
///
/// Tile width is `long.len()` cut into at most `budget` chunks, never
/// narrower than `short` (narrower tiles repeat the short operand's
/// combine work without adding parallelism), so the task count and the
/// per-tile buffer count are both budget-bounded; leftover budget funds
/// splitting inside each tile product.
fn mul_tiled(long: &[Limb], short: &[Limb], out: &mut Vec<Limb>, c: &SplitCounters, budget: usize) {
    let tile = long.len().div_ceil(budget).max(short.len());
    // Per-tile output buffers, taken and returned on the submitting
    // worker; claimed subtasks only write into their slot.
    let mut prods: Vec<Vec<Limb>> = long
        .chunks(tile)
        .map(|ch| crate::scratch::take(ch.len() + short.len()))
        .collect();
    let per_tile = budget / prods.len();
    tile_rec(long, short, tile, &mut prods, c, per_tile);
    out.clear();
    out.resize(long.len() + short.len(), 0);
    for (i, p) in prods.iter().enumerate() {
        add_at(out, i * tile, p);
    }
    trim(out);
    for p in prods.drain(..).rev() {
        crate::scratch::put(p);
    }
}

/// Halving fork-join over the tile range: left half inline, right half
/// claimable, one leaf per tile product, each with `per_tile` budget
/// for its own internal splits.
fn tile_rec(
    long: &[Limb],
    short: &[Limb],
    tile: usize,
    prods: &mut [Vec<Limb>],
    c: &SplitCounters,
    per_tile: usize,
) {
    if prods.len() == 1 {
        mul_rec(trimmed(long), short, &mut prods[0], c, per_tile);
        return;
    }
    let mid = prods.len() / 2;
    let (left_p, right_p) = prods.split_at_mut(mid);
    let (left_l, right_l) = long.split_at(mid * tile);
    c.join(
        || tile_rec(left_l, short, tile, left_p, c, per_tile),
        || tile_rec(right_l, short, tile, right_p, c, per_tile),
    );
}

#[cfg(test)]
mod tests {
    use super::super::mul as school;
    use super::*;

    fn limbs(n: usize, seed: u64) -> Vec<Limb> {
        // Splitmix-style fill with a nonzero top limb.
        let mut v: Vec<Limb> = (0..n as u64)
            .map(|i| {
                let mut x = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^ (x >> 31)
            })
            .collect();
        if let Some(top) = v.last_mut() {
            *top |= 1;
        }
        v
    }

    /// With no ambient pool scope, every join runs inline — the kernels
    /// are then plain recursive Karatsuba and must match schoolbook.
    #[test]
    fn inline_balanced_split_matches_schoolbook() {
        let a = limbs(PAR_MUL_THRESHOLD * 2 + 3, 1);
        let b = limbs(PAR_MUL_THRESHOLD * 2 - 5, 2);
        let mut out = Vec::new();
        mul_into(&a, &b, &mut out);
        assert_eq!(out, school::mul(&a, &b));
    }

    #[test]
    fn inline_tiled_split_matches_schoolbook() {
        let a = limbs(PAR_MUL_THRESHOLD * 5 + 7, 3);
        let b = limbs(PAR_MUL_THRESHOLD, 4);
        let mut out = Vec::new();
        mul_into(&a, &b, &mut out);
        assert_eq!(out, school::mul(&a, &b));
        // And symmetrically.
        let mut out2 = Vec::new();
        mul_into(&b, &a, &mut out2);
        assert_eq!(out2, out);
    }

    /// A long × short product whose short side is below the threshold
    /// still engages the tiled path — the work-proxy gate admits it —
    /// and must stay bit-identical to the serial kernels.
    #[test]
    fn tiled_split_with_subthreshold_short_matches_schoolbook() {
        let ctx = crate::SolveCtx::new(crate::MulBackend::Fast);
        let a = limbs(PAR_MUL_THRESHOLD * 8, 10);
        let b = limbs(PAR_MUL_THRESHOLD / 2, 11);
        ctx.run(|| {
            let mut out = Vec::new();
            mul_into(&a, &b, &mut out);
            assert_eq!(out, school::mul(&a, &b));
        });
        let s = ctx.parmul_stats();
        assert_eq!(s.products, 1, "work proxy admits the sub-threshold short side");
        assert!(s.tasks >= 2);
    }

    #[test]
    fn inline_square_matches_schoolbook() {
        let a = limbs(PAR_MUL_THRESHOLD * 2 + 1, 5);
        let mut out = Vec::new();
        square_into(&a, &mut out);
        assert_eq!(out, school::mul(&a, &a));
    }

    #[test]
    fn below_threshold_falls_through_without_recording() {
        let ctx = crate::SolveCtx::new(crate::MulBackend::Fast);
        let a = limbs(PAR_MUL_THRESHOLD - 1, 6);
        ctx.run(|| {
            let mut out = Vec::new();
            mul_into(&a, &a.clone(), &mut out);
            assert_eq!(out, school::mul(&a, &a));
        });
        let s = ctx.parmul_stats();
        assert_eq!(s.products, 0, "no split, no product recorded");
    }

    #[test]
    fn split_products_record_execution_stats() {
        let ctx = crate::SolveCtx::new(crate::MulBackend::Fast);
        let a = limbs(PAR_MUL_THRESHOLD * 2, 7);
        ctx.run(|| {
            let mut out = Vec::new();
            mul_into(&a, &a, &mut out);
        });
        let s = ctx.parmul_stats();
        assert_eq!(s.products, 1);
        assert!(s.tasks >= 2, "one balanced split submits two subtasks");
        assert_eq!(s.steals, 0, "no pool scope: every subtask ran inline");
        assert_eq!(s.operand_bits, super::super::bit_len(&a));
        assert!(s.work_ns > 0, "a split product measures nonzero work");
        assert!(
            s.span_ns > 0 && s.span_ns <= s.work_ns,
            "critical path is positive and no longer than the work: {s:?}"
        );
    }

    #[test]
    fn dirty_destination_is_fully_overwritten() {
        let a = limbs(PAR_MUL_THRESHOLD * 2, 8);
        let b = limbs(PAR_MUL_THRESHOLD + 9, 9);
        let mut out = vec![Limb::MAX; 4 * PAR_MUL_THRESHOLD + 64];
        mul_into(&a, &b, &mut out);
        assert_eq!(out, school::mul(&a, &b));
    }
}
