//! Arithmetic on unsigned multiprecision magnitudes.
//!
//! A magnitude is a `Vec<Limb>` in little-endian limb order with the
//! invariant that the last limb is nonzero (the empty vector represents
//! zero). All functions here either require normalized inputs or preserve
//! the invariant on their outputs, as documented.
//!
//! The linear routines (add/sub/shift) and division are the classical
//! algorithms. Multiplication has two interchangeable kernels — the
//! classical schoolbook routine in [`mul`] and Karatsuba in [`kmul`] —
//! selected per session via [`crate::SolveCtx`], falling back to the
//! process-wide [`crate::backend`] compatibility layer when no context
//! is installed; see the crate docs for how this coexists with the
//! paper's quadratic cost model.

pub mod div;
pub mod kmul;
pub mod mul;

use crate::backend::{mul_backend, MulBackend};
use crate::limb::{DoubleLimb, Limb, LIMB_BITS};
use std::cmp::Ordering;

/// The backend to dispatch to: the installed session's choice, else the
/// process-global selection.
#[inline]
fn active_backend() -> MulBackend {
    crate::session::current_backend().unwrap_or_else(mul_backend)
}

/// Product of two magnitudes using the active backend (the installed
/// [`crate::SolveCtx`]'s, else [`crate::backend::mul_backend`]).
#[inline]
pub fn mul_auto(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    match active_backend() {
        MulBackend::Schoolbook => mul::mul(a, b),
        MulBackend::Fast => kmul::mul(a, b),
    }
}

/// Square of a magnitude using the active backend.
#[inline]
pub fn sqr_auto(a: &[Limb]) -> Vec<Limb> {
    match active_backend() {
        MulBackend::Schoolbook => mul::square(a),
        MulBackend::Fast => kmul::square(a),
    }
}

/// Removes trailing zero limbs, restoring the normalization invariant.
#[inline]
pub fn trim(v: &mut Vec<Limb>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

/// Returns `v` with trailing zero limbs removed.
#[inline]
pub fn normalized(mut v: Vec<Limb>) -> Vec<Limb> {
    trim(&mut v);
    v
}

/// True if the magnitude is zero (empty).
#[inline]
pub fn is_zero(a: &[Limb]) -> bool {
    a.is_empty()
}

/// Compares two normalized magnitudes.
pub fn cmp(a: &[Limb], b: &[Limb]) -> Ordering {
    debug_assert!(a.last() != Some(&0) && b.last() != Some(&0));
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
        other => other,
    }
}

/// Number of significant bits (zero has bit length 0).
pub fn bit_len(a: &[Limb]) -> u64 {
    match a.last() {
        None => 0,
        Some(&top) => {
            debug_assert!(top != 0);
            a.len() as u64 * LIMB_BITS as u64 - top.leading_zeros() as u64
        }
    }
}

/// Returns bit `i` (little-endian bit order across limbs).
pub fn bit(a: &[Limb], i: u64) -> bool {
    let limb = (i / LIMB_BITS as u64) as usize;
    if limb >= a.len() {
        return false;
    }
    (a[limb] >> (i % LIMB_BITS as u64)) & 1 == 1
}

/// Number of trailing zero bits; `None` for zero.
pub fn trailing_zeros(a: &[Limb]) -> Option<u64> {
    a.iter()
        .position(|&l| l != 0)
        .map(|i| i as u64 * LIMB_BITS as u64 + a[i].trailing_zeros() as u64)
}

/// Sum of two magnitudes.
#[allow(clippy::needless_range_loop)] // carry chain reads clearer indexed
pub fn add(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: Limb = 0;
    for i in 0..long.len() {
        let s = long[i] as DoubleLimb
            + *short.get(i).unwrap_or(&0) as DoubleLimb
            + carry as DoubleLimb;
        out.push(s as Limb);
        carry = (s >> LIMB_BITS) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Difference `a - b`; requires `a >= b` (debug-asserted).
#[allow(clippy::needless_range_loop)] // borrow chain reads clearer indexed
pub fn sub(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    debug_assert!(cmp(a, b) != Ordering::Less, "nat::sub underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: Limb = 0;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(*b.get(i).unwrap_or(&0));
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 | b2) as Limb;
    }
    debug_assert_eq!(borrow, 0);
    normalized(out)
}

/// Left shift by `bits`.
pub fn shl(a: &[Limb], bits: u64) -> Vec<Limb> {
    if is_zero(a) {
        return Vec::new();
    }
    let limb_shift = (bits / LIMB_BITS as u64) as usize;
    let bit_shift = (bits % LIMB_BITS as u64) as u32;
    let mut out = vec![0; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry: Limb = 0;
        for &l in a {
            out.push((l << bit_shift) | carry);
            carry = l >> (LIMB_BITS - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    out
}

/// Right shift by `bits` (floor — bits shifted out are discarded).
pub fn shr(a: &[Limb], bits: u64) -> Vec<Limb> {
    let limb_shift = (bits / LIMB_BITS as u64) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % LIMB_BITS as u64) as u32;
    let src = &a[limb_shift..];
    if bit_shift == 0 {
        return src.to_vec();
    }
    let mut out = Vec::with_capacity(src.len());
    for i in 0..src.len() {
        let hi = if i + 1 < src.len() {
            src[i + 1] << (LIMB_BITS - bit_shift)
        } else {
            0
        };
        out.push((src[i] >> bit_shift) | hi);
    }
    normalized(out)
}

/// True if any of the low `bits` bits is set (i.e. `shr(a, bits)` is inexact).
pub fn low_bits_nonzero(a: &[Limb], bits: u64) -> bool {
    let full = (bits / LIMB_BITS as u64) as usize;
    let rem = (bits % LIMB_BITS as u64) as u32;
    if a[..full.min(a.len())].iter().any(|&l| l != 0) {
        return true;
    }
    if rem > 0 && full < a.len() {
        return a[full] & ((1 << rem) - 1) != 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Vec<Limb> {
        normalized(vec![v as Limb, (v >> 64) as Limb])
    }

    fn val(a: &[Limb]) -> u128 {
        assert!(a.len() <= 2);
        a.first().copied().unwrap_or(0) as u128
            | (a.get(1).copied().unwrap_or(0) as u128) << 64
    }

    #[test]
    fn normalization() {
        assert_eq!(normalized(vec![1, 0, 0]), vec![1]);
        assert_eq!(normalized(vec![0, 0]), Vec::<Limb>::new());
        assert!(is_zero(&normalized(vec![0])));
    }

    #[test]
    fn cmp_orders_by_length_then_lexicographic() {
        assert_eq!(cmp(&n(5), &n(5)), Ordering::Equal);
        assert_eq!(cmp(&n(5), &n(6)), Ordering::Less);
        assert_eq!(cmp(&n(u128::MAX), &n(1)), Ordering::Greater);
        assert_eq!(cmp(&[], &n(1)), Ordering::Less);
        assert_eq!(cmp(&[], &[]), Ordering::Equal);
    }

    #[test]
    fn bit_len_examples() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&n(1)), 1);
        assert_eq!(bit_len(&n(255)), 8);
        assert_eq!(bit_len(&n(256)), 9);
        assert_eq!(bit_len(&n(1u128 << 64)), 65);
        assert_eq!(bit_len(&n(u128::MAX)), 128);
    }

    #[test]
    fn bit_access() {
        let x = n(0b1011);
        assert!(bit(&x, 0));
        assert!(bit(&x, 1));
        assert!(!bit(&x, 2));
        assert!(bit(&x, 3));
        assert!(!bit(&x, 200));
        let y = n(1u128 << 70);
        assert!(bit(&y, 70));
        assert!(!bit(&y, 69));
    }

    #[test]
    fn trailing_zeros_examples() {
        assert_eq!(trailing_zeros(&[]), None);
        assert_eq!(trailing_zeros(&n(1)), Some(0));
        assert_eq!(trailing_zeros(&n(8)), Some(3));
        assert_eq!(trailing_zeros(&n(1u128 << 100)), Some(100));
    }

    #[test]
    fn add_with_carry_chains() {
        assert_eq!(val(&add(&n(u64::MAX as u128), &n(1))), 1u128 << 64);
        assert_eq!(val(&add(&n(3), &n(4))), 7);
        assert_eq!(val(&add(&[], &n(9))), 9);
        // carry into a fresh limb
        let big = add(&n(u128::MAX), &n(1));
        assert_eq!(big, vec![0, 0, 1]);
    }

    #[test]
    fn sub_with_borrow_chains() {
        assert_eq!(val(&sub(&n(1u128 << 64), &n(1))), u64::MAX as u128);
        assert_eq!(sub(&n(7), &n(7)), Vec::<Limb>::new());
        assert_eq!(val(&sub(&n(1u128 << 127), &n(1))), (1u128 << 127) - 1);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics() {
        sub(&n(1), &n(2));
    }

    #[test]
    fn shl_shr_roundtrip() {
        for shift in [0u64, 1, 7, 63, 64, 65, 127, 130] {
            let x = n(0x1234_5678_9abc_def0_1122_3344_5566_7788);
            assert_eq!(shr(&shl(&x, shift), shift), x, "shift {shift}");
        }
        assert_eq!(shl(&[], 100), Vec::<Limb>::new());
        assert_eq!(val(&shl(&n(1), 64)), 1u128 << 64);
        assert_eq!(shr(&n(0b101), 1), n(0b10));
        assert_eq!(shr(&n(1), 1), Vec::<Limb>::new());
        assert_eq!(shr(&n(u128::MAX), 200), Vec::<Limb>::new());
    }

    #[test]
    fn low_bits_detection() {
        let x = n(0b1000);
        assert!(!low_bits_nonzero(&x, 3));
        assert!(low_bits_nonzero(&x, 4));
        assert!(low_bits_nonzero(&n(1u128 << 64), 65));
        assert!(!low_bits_nonzero(&n(1u128 << 64), 64));
    }
}
