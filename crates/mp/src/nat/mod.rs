//! Arithmetic on unsigned multiprecision magnitudes.
//!
//! A magnitude is a `Vec<Limb>` in little-endian limb order with the
//! invariant that the last limb is nonzero (the empty vector represents
//! zero). All functions here either require normalized inputs or preserve
//! the invariant on their outputs, as documented.
//!
//! The linear routines (add/sub/shift) and division are the classical
//! algorithms. Multiplication has two interchangeable kernels — the
//! classical schoolbook routine in [`mul`] and Karatsuba in [`kmul`] —
//! selected per session via [`crate::SolveCtx`], falling back to the
//! process-wide [`crate::backend`] compatibility layer when no context
//! is installed; see the crate docs for how this coexists with the
//! paper's quadratic cost model.

pub mod div;
pub mod kmul;
pub mod mul;
pub mod newton_div;
pub mod parmul;

use crate::backend::{mul_backend, DivBackend, MulBackend, ParMulMode};
use crate::limb::{DoubleLimb, Limb, LIMB_BITS};
use std::cmp::Ordering;

/// The backend to dispatch to: the installed session's choice, else the
/// process-global selection.
#[inline]
fn active_backend() -> MulBackend {
    crate::session::current_backend().unwrap_or_else(mul_backend)
}

/// Whether this product should go through the fork-join splitter
/// ([`parmul`]): enough schoolbook-proxy work (`a.len()·b.len()`, in
/// limb-pairs) to fund at least one three-way fork at the active split
/// threshold `t` ([`parmul::par_mul_threshold`], default
/// [`parmul::PAR_MUL_THRESHOLD`] limbs) — i.e. `work ≥ 3·t²`, so every
/// subtask carries at least a `t × t` product's worth of work — and the
/// active [`ParMulMode`] agrees — `On` unconditionally, `Auto` only
/// when the ambient pool scope reports idle capacity
/// ([`rr_sched::current_parallelism`] > 1; with no scope or a saturated
/// queue the split would only add publish/retract overhead). The work
/// proxy (rather than a min-operand-length gate) lets heavily
/// unbalanced long×short products — ubiquitous in the Newton division's
/// truncated-piece arithmetic — engage the tiled decomposition even
/// when the short side alone is below `t`. Only the `Fast` backend
/// splits: the decomposition *is* the Karatsuba split, and `Schoolbook`
/// exists to mirror the paper's quadratic `mp` kernel exactly.
#[inline]
fn par_mul_engaged(work: usize) -> bool {
    let t = parmul::par_mul_threshold();
    if work < 3 * t * t {
        return false;
    }
    match crate::session::par_mul_active() {
        ParMulMode::Off => false,
        ParMulMode::On => true,
        ParMulMode::Auto => rr_sched::current_parallelism() > 1,
    }
}

/// Product of two magnitudes using the active backend (the installed
/// [`crate::SolveCtx`]'s, else [`crate::backend::mul_backend`]).
#[inline]
pub fn mul_auto(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    match active_backend() {
        MulBackend::Schoolbook => mul::mul(a, b),
        MulBackend::Fast => {
            let mut out = Vec::new();
            if par_mul_engaged(a.len() * b.len()) {
                parmul::mul_into(a, b, &mut out);
            } else {
                kmul::mul_into(a, b, &mut out);
            }
            out
        }
    }
}

/// Square of a magnitude using the active backend.
#[inline]
pub fn sqr_auto(a: &[Limb]) -> Vec<Limb> {
    match active_backend() {
        MulBackend::Schoolbook => mul::square(a),
        MulBackend::Fast => {
            let mut out = Vec::new();
            if par_mul_engaged(a.len() * a.len()) {
                parmul::square_into(a, &mut out);
            } else {
                kmul::square_into(a, &mut out);
            }
            out
        }
    }
}

/// [`mul_auto`] writing into `out`.
///
/// `out` is cleared and every limb of the product is written before any
/// is read back, so a dirty buffer from [`crate::scratch`] is a valid
/// destination (its spare capacity is reused, never read). Neither
/// operand may alias `out` — which the borrow checker already enforces
/// for safe callers.
#[inline]
pub fn mul_auto_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>) {
    match active_backend() {
        MulBackend::Schoolbook => mul::mul_into(a, b, out),
        MulBackend::Fast => {
            if par_mul_engaged(a.len() * b.len()) {
                parmul::mul_into(a, b, out);
            } else {
                kmul::mul_into(a, b, out);
            }
        }
    }
}

/// [`sqr_auto`] writing into `out` (same contract as
/// [`mul_auto_into`]).
#[inline]
pub fn sqr_auto_into(a: &[Limb], out: &mut Vec<Limb>) {
    match active_backend() {
        MulBackend::Schoolbook => mul::mul_into(a, a, out),
        MulBackend::Fast => {
            if par_mul_engaged(a.len() * a.len()) {
                parmul::square_into(a, out);
            } else {
                kmul::square_into(a, out);
            }
        }
    }
}

/// The division backend to dispatch to: the installed session's choice,
/// else the process-global selection (`RR_DIV`).
#[inline]
pub(crate) fn active_div_backend() -> DivBackend {
    crate::session::current_div_backend().unwrap_or_else(crate::backend::div_backend)
}

/// Divides `u` by `v` using the active division backend — the single
/// dispatching entry point `Int::div_rem` (and through it `div_exact`,
/// the subresultant remainder steps, and every other division in the
/// workspace) routes through. Both kernels return identical
/// `(quotient, remainder)` pairs; only wall-clock differs.
///
/// # Panics
/// Panics if `v` is zero.
#[inline]
pub fn div_rem_auto(u: &[Limb], v: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    match active_div_backend() {
        DivBackend::Schoolbook => div::div_rem(u, v),
        DivBackend::Newton => newton_div::div_rem(u, v),
    }
}

/// Exact division `u / v` (zero remainder, debug-asserted) using the
/// active division backend. Under [`DivBackend::Newton`] this is NOT the
/// reciprocal kernel but the 2-adic (Hensel) one: exactness lets the
/// quotient be recovered from low bits alone, with cost independent of
/// the divisor's length. `Int::div_exact` — and through it the
/// subresultant remainder steps and the tree stage's scalings — routes
/// through here.
///
/// # Panics
/// Panics if `v` is zero.
#[inline]
pub fn div_exact_auto(u: &[Limb], v: &[Limb]) -> Vec<Limb> {
    match active_div_backend() {
        DivBackend::Schoolbook => div::div_exact(u, v),
        DivBackend::Newton => newton_div::div_exact(u, v),
    }
}

/// Removes trailing zero limbs, restoring the normalization invariant.
///
/// Truncates only — this never reallocates or shrinks the backing
/// storage, so the vector keeps its full capacity. The scratch-arena
/// layer ([`crate::scratch`]) depends on that: buffers cycle through
/// trim on every kernel and must come back with their capacity intact.
#[inline]
pub fn trim(v: &mut Vec<Limb>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

/// Returns `v` with trailing zero limbs removed. Like [`trim`], this
/// never reallocates: the returned vector owns the same storage with
/// the same capacity.
#[inline]
pub fn normalized(mut v: Vec<Limb>) -> Vec<Limb> {
    trim(&mut v);
    v
}

/// True if the magnitude is zero (empty).
#[inline]
pub fn is_zero(a: &[Limb]) -> bool {
    a.is_empty()
}

/// Compares two normalized magnitudes.
pub fn cmp(a: &[Limb], b: &[Limb]) -> Ordering {
    debug_assert!(a.last() != Some(&0) && b.last() != Some(&0));
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
        other => other,
    }
}

/// Number of significant bits (zero has bit length 0).
pub fn bit_len(a: &[Limb]) -> u64 {
    match a.last() {
        None => 0,
        Some(&top) => {
            debug_assert!(top != 0);
            a.len() as u64 * LIMB_BITS as u64 - top.leading_zeros() as u64
        }
    }
}

/// Returns bit `i` (little-endian bit order across limbs).
pub fn bit(a: &[Limb], i: u64) -> bool {
    let limb = (i / LIMB_BITS as u64) as usize;
    if limb >= a.len() {
        return false;
    }
    (a[limb] >> (i % LIMB_BITS as u64)) & 1 == 1
}

/// Number of trailing zero bits; `None` for zero.
pub fn trailing_zeros(a: &[Limb]) -> Option<u64> {
    a.iter()
        .position(|&l| l != 0)
        .map(|i| i as u64 * LIMB_BITS as u64 + a[i].trailing_zeros() as u64)
}

/// Sum of two magnitudes.
#[allow(clippy::needless_range_loop)] // carry chain reads clearer indexed
pub fn add(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: Limb = 0;
    for i in 0..long.len() {
        let s = long[i] as DoubleLimb
            + *short.get(i).unwrap_or(&0) as DoubleLimb
            + carry as DoubleLimb;
        out.push(s as Limb);
        carry = (s >> LIMB_BITS) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Difference `a - b`; requires `a >= b` (debug-asserted).
#[allow(clippy::needless_range_loop)] // borrow chain reads clearer indexed
pub fn sub(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    debug_assert!(cmp(a, b) != Ordering::Less, "nat::sub underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: Limb = 0;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(*b.get(i).unwrap_or(&0));
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 | b2) as Limb;
    }
    debug_assert_eq!(borrow, 0);
    normalized(out)
}

/// Sum written into `out` (cleared and fully overwritten; dirty scratch
/// buffers are valid destinations). Same carry chain as [`add`].
#[allow(clippy::needless_range_loop)] // carry chain reads clearer indexed
pub fn add_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>) {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    out.clear();
    out.reserve(long.len() + 1);
    let mut carry: Limb = 0;
    for i in 0..long.len() {
        let s = long[i] as DoubleLimb
            + *short.get(i).unwrap_or(&0) as DoubleLimb
            + carry as DoubleLimb;
        out.push(s as Limb);
        carry = (s >> LIMB_BITS) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
}

/// In-place sum: `a += b`. Same carry chain as [`add`], without the
/// output allocation (the vector only grows when the sum needs an extra
/// limb). Preserves normalization.
#[allow(clippy::needless_range_loop)] // carry chain reads clearer indexed
pub fn add_assign(a: &mut Vec<Limb>, b: &[Limb]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry: Limb = 0;
    for i in 0..a.len() {
        let s = a[i] as DoubleLimb + *b.get(i).unwrap_or(&0) as DoubleLimb + carry as DoubleLimb;
        a[i] = s as Limb;
        carry = (s >> LIMB_BITS) as Limb;
        if carry == 0 && i + 1 >= b.len() {
            return;
        }
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// In-place difference: `a -= b`; requires `a >= b` (debug-asserted).
/// Preserves normalization (trims after the borrow chain).
#[allow(clippy::needless_range_loop)] // borrow chain reads clearer indexed
pub fn sub_assign(a: &mut Vec<Limb>, b: &[Limb]) {
    debug_assert!(cmp(a, b) != Ordering::Less, "nat::sub_assign underflow");
    let mut borrow: Limb = 0;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(*b.get(i).unwrap_or(&0));
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 | b2) as Limb;
        if borrow == 0 && i + 1 >= b.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0);
    trim(a);
}

/// In-place reversed difference: `a = b - a`; requires `b >= a`
/// (debug-asserted). Preserves normalization. The in-place complement of
/// [`sub_assign`] for the accumulator-flips-sign case: the accumulator
/// keeps its storage instead of being replaced by a fresh [`sub`]
/// allocation.
#[allow(clippy::needless_range_loop)] // borrow chain reads clearer indexed
pub fn rsub_assign(a: &mut Vec<Limb>, b: &[Limb]) {
    debug_assert!(cmp(b, a) != Ordering::Less, "nat::rsub_assign underflow");
    a.resize(b.len(), 0);
    let mut borrow: Limb = 0;
    for i in 0..b.len() {
        let (d1, b1) = b[i].overflowing_sub(a[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 | b2) as Limb;
    }
    debug_assert_eq!(borrow, 0);
    trim(a);
}

/// Packs magnitudes into one magnitude with each `slots[i]` occupying
/// the `slot_bits`-bit field starting at bit `i·slot_bits` — the
/// Kronecker-substitution evaluation at `x = 2^slot_bits`.
///
/// Every slot value must fit its field (`bit_len ≤ slot_bits`,
/// debug-asserted); fields are then bit-disjoint, so packing is a pure
/// OR of limb-shifted slots — limb-granularity, no per-bit work.
pub fn pack_slots(slots: &[&[Limb]], slot_bits: u64) -> Vec<Limb> {
    let mut out = Vec::new();
    pack_slots_into(slots, slot_bits, &mut out);
    out
}

/// [`pack_slots`] writing into `out` (cleared and fully overwritten; a
/// dirty scratch buffer is a valid destination — see [`crate::scratch`]).
pub fn pack_slots_into(slots: &[&[Limb]], slot_bits: u64, out: &mut Vec<Limb>) {
    debug_assert!(slot_bits > 0);
    let total_bits = slot_bits * slots.len() as u64;
    // One limb of headroom: a slot whose field straddles a limb boundary
    // writes a (possibly zero) carry limb past its field's last limb.
    out.clear();
    out.resize(total_bits.div_ceil(LIMB_BITS as u64) as usize + 1, 0);
    for (i, slot) in slots.iter().enumerate() {
        debug_assert!(bit_len(slot) <= slot_bits, "slot overflows its field");
        if slot.is_empty() {
            continue;
        }
        let off = i as u64 * slot_bits;
        let limb_off = (off / LIMB_BITS as u64) as usize;
        let bit_off = (off % LIMB_BITS as u64) as u32;
        if bit_off == 0 {
            for (j, &l) in slot.iter().enumerate() {
                out[limb_off + j] |= l;
            }
        } else {
            let mut carry: Limb = 0;
            for (j, &l) in slot.iter().enumerate() {
                out[limb_off + j] |= (l << bit_off) | carry;
                carry = l >> (LIMB_BITS - bit_off);
            }
            out[limb_off + slot.len()] |= carry;
        }
    }
    trim(out);
}

/// Inverse of [`pack_slots`]: extracts `count` normalized magnitudes of
/// `slot_bits` bits each from consecutive fields of `packed`. Fields
/// past the end of `packed` read as zero.
pub fn unpack_slots(packed: &[Limb], slot_bits: u64, count: usize) -> Vec<Vec<Limb>> {
    debug_assert!(slot_bits > 0);
    let slot_limbs = slot_bits.div_ceil(LIMB_BITS as u64) as usize;
    let top_mask = match (slot_bits % LIMB_BITS as u64) as u32 {
        0 => Limb::MAX,
        rem => ((1 as Limb) << rem) - 1,
    };
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let off = i as u64 * slot_bits;
        let limb_off = (off / LIMB_BITS as u64) as usize;
        let bit_off = (off % LIMB_BITS as u64) as u32;
        let mut v = Vec::with_capacity(slot_limbs);
        for j in 0..slot_limbs {
            let lo = packed.get(limb_off + j).copied().unwrap_or(0);
            v.push(if bit_off == 0 {
                lo
            } else {
                let hi = packed.get(limb_off + j + 1).copied().unwrap_or(0);
                (lo >> bit_off) | (hi << (LIMB_BITS - bit_off))
            });
        }
        *v.last_mut().expect("slot_limbs ≥ 1") &= top_mask;
        out.push(normalized(v));
    }
    out
}

/// Balanced-residue inverse of [`pack_slots`] for *signed* coefficient
/// vectors: reads `count` fields of `slot_bits` bits each (zeros past
/// the end) from the magnitude of `|Σ cᵢ·2^{i·slot_bits}|` where every
/// `|cᵢ| < 2^{slot_bits−1}`, returning each coefficient as
/// `(negative, magnitude)` (zero is `(false, [])`).
///
/// A field whose value — plus the borrow from the field below — is
/// `≥ 2^{slot_bits−1}` can only be the residue of a negative
/// coefficient: it decodes as `value − 2^{slot_bits}` and borrows `1`
/// from the next field. The borrow can run past the physical end of
/// `packed` (a negative coefficient near the top borrows from phantom
/// zero fields), which is why fields are read until `count`, not until
/// the magnitude ends. `count` must cover every nonzero coefficient;
/// the final borrow is then zero (debug-asserted).
pub fn unpack_slots_signed(
    packed: &[Limb],
    slot_bits: u64,
    count: usize,
) -> Vec<(bool, Vec<Limb>)> {
    debug_assert!(slot_bits > 0);
    let slot_limbs = slot_bits.div_ceil(LIMB_BITS as u64) as usize;
    let top_mask = match (slot_bits % LIMB_BITS as u64) as u32 {
        0 => Limb::MAX,
        rem => ((1 as Limb) << rem) - 1,
    };
    let two_w = shl(&[1], slot_bits);
    let mut out = Vec::with_capacity(count);
    let mut borrow = false;
    for i in 0..count {
        let off = i as u64 * slot_bits;
        let limb_off = (off / LIMB_BITS as u64) as usize;
        let bit_off = (off % LIMB_BITS as u64) as u32;
        let mut v = Vec::with_capacity(slot_limbs + 1);
        for j in 0..slot_limbs {
            let lo = packed.get(limb_off + j).copied().unwrap_or(0);
            v.push(if bit_off == 0 {
                lo
            } else {
                let hi = packed.get(limb_off + j + 1).copied().unwrap_or(0);
                (lo >> bit_off) | (hi << (LIMB_BITS - bit_off))
            });
        }
        *v.last_mut().expect("slot_limbs ≥ 1") &= top_mask;
        let mut v = normalized(v);
        if borrow {
            add_assign(&mut v, &[1]);
        }
        // v ∈ [0, 2^slot_bits]; bit_len ≥ slot_bits ⇔ v ≥ 2^{slot_bits−1}.
        if bit_len(&v) >= slot_bits {
            let mag = sub(&two_w, &v);
            out.push((!is_zero(&mag), mag));
            borrow = true;
        } else {
            out.push((false, v));
            borrow = false;
        }
    }
    debug_assert!(!borrow, "top residue borrowed past the requested fields");
    out
}

/// Left shift by `bits`.
pub fn shl(a: &[Limb], bits: u64) -> Vec<Limb> {
    if is_zero(a) {
        return Vec::new();
    }
    let limb_shift = (bits / LIMB_BITS as u64) as usize;
    let bit_shift = (bits % LIMB_BITS as u64) as u32;
    let mut out = vec![0; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry: Limb = 0;
        for &l in a {
            out.push((l << bit_shift) | carry);
            carry = l >> (LIMB_BITS - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    out
}

/// [`shl`] writing into `out` (cleared and fully overwritten; dirty
/// scratch buffers are valid destinations).
pub fn shl_into(a: &[Limb], bits: u64, out: &mut Vec<Limb>) {
    out.clear();
    if is_zero(a) {
        return;
    }
    let limb_shift = (bits / LIMB_BITS as u64) as usize;
    let bit_shift = (bits % LIMB_BITS as u64) as u32;
    out.reserve(limb_shift + a.len() + 1);
    out.resize(limb_shift, 0);
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry: Limb = 0;
        for &l in a {
            out.push((l << bit_shift) | carry);
            carry = l >> (LIMB_BITS - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
}

/// Right shift by `bits` (floor — bits shifted out are discarded).
pub fn shr(a: &[Limb], bits: u64) -> Vec<Limb> {
    let limb_shift = (bits / LIMB_BITS as u64) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % LIMB_BITS as u64) as u32;
    let src = &a[limb_shift..];
    if bit_shift == 0 {
        return src.to_vec();
    }
    let mut out = Vec::with_capacity(src.len());
    for i in 0..src.len() {
        let hi = if i + 1 < src.len() {
            src[i + 1] << (LIMB_BITS - bit_shift)
        } else {
            0
        };
        out.push((src[i] >> bit_shift) | hi);
    }
    normalized(out)
}

/// True if any of the low `bits` bits is set (i.e. `shr(a, bits)` is inexact).
pub fn low_bits_nonzero(a: &[Limb], bits: u64) -> bool {
    let full = (bits / LIMB_BITS as u64) as usize;
    let rem = (bits % LIMB_BITS as u64) as u32;
    if a[..full.min(a.len())].iter().any(|&l| l != 0) {
        return true;
    }
    if rem > 0 && full < a.len() {
        return a[full] & ((1 << rem) - 1) != 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Vec<Limb> {
        normalized(vec![v as Limb, (v >> 64) as Limb])
    }

    fn val(a: &[Limb]) -> u128 {
        assert!(a.len() <= 2);
        a.first().copied().unwrap_or(0) as u128
            | (a.get(1).copied().unwrap_or(0) as u128) << 64
    }

    #[test]
    fn normalization() {
        assert_eq!(normalized(vec![1, 0, 0]), vec![1]);
        assert_eq!(normalized(vec![0, 0]), Vec::<Limb>::new());
        assert!(is_zero(&normalized(vec![0])));
    }

    #[test]
    fn cmp_orders_by_length_then_lexicographic() {
        assert_eq!(cmp(&n(5), &n(5)), Ordering::Equal);
        assert_eq!(cmp(&n(5), &n(6)), Ordering::Less);
        assert_eq!(cmp(&n(u128::MAX), &n(1)), Ordering::Greater);
        assert_eq!(cmp(&[], &n(1)), Ordering::Less);
        assert_eq!(cmp(&[], &[]), Ordering::Equal);
    }

    #[test]
    fn bit_len_examples() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&n(1)), 1);
        assert_eq!(bit_len(&n(255)), 8);
        assert_eq!(bit_len(&n(256)), 9);
        assert_eq!(bit_len(&n(1u128 << 64)), 65);
        assert_eq!(bit_len(&n(u128::MAX)), 128);
    }

    #[test]
    fn bit_access() {
        let x = n(0b1011);
        assert!(bit(&x, 0));
        assert!(bit(&x, 1));
        assert!(!bit(&x, 2));
        assert!(bit(&x, 3));
        assert!(!bit(&x, 200));
        let y = n(1u128 << 70);
        assert!(bit(&y, 70));
        assert!(!bit(&y, 69));
    }

    #[test]
    fn trailing_zeros_examples() {
        assert_eq!(trailing_zeros(&[]), None);
        assert_eq!(trailing_zeros(&n(1)), Some(0));
        assert_eq!(trailing_zeros(&n(8)), Some(3));
        assert_eq!(trailing_zeros(&n(1u128 << 100)), Some(100));
    }

    #[test]
    fn add_with_carry_chains() {
        assert_eq!(val(&add(&n(u64::MAX as u128), &n(1))), 1u128 << 64);
        assert_eq!(val(&add(&n(3), &n(4))), 7);
        assert_eq!(val(&add(&[], &n(9))), 9);
        // carry into a fresh limb
        let big = add(&n(u128::MAX), &n(1));
        assert_eq!(big, vec![0, 0, 1]);
    }

    #[test]
    fn sub_with_borrow_chains() {
        assert_eq!(val(&sub(&n(1u128 << 64), &n(1))), u64::MAX as u128);
        assert_eq!(sub(&n(7), &n(7)), Vec::<Limb>::new());
        assert_eq!(val(&sub(&n(1u128 << 127), &n(1))), (1u128 << 127) - 1);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics() {
        sub(&n(1), &n(2));
    }

    #[test]
    fn shl_shr_roundtrip() {
        for shift in [0u64, 1, 7, 63, 64, 65, 127, 130] {
            let x = n(0x1234_5678_9abc_def0_1122_3344_5566_7788);
            assert_eq!(shr(&shl(&x, shift), shift), x, "shift {shift}");
        }
        assert_eq!(shl(&[], 100), Vec::<Limb>::new());
        assert_eq!(val(&shl(&n(1), 64)), 1u128 << 64);
        assert_eq!(shr(&n(0b101), 1), n(0b10));
        assert_eq!(shr(&n(1), 1), Vec::<Limb>::new());
        assert_eq!(shr(&n(u128::MAX), 200), Vec::<Limb>::new());
    }

    #[test]
    fn add_assign_matches_add() {
        let cases = [
            (0u128, 0u128),
            (3, 4),
            (u64::MAX as u128, 1),
            (u128::MAX, 1),
            (u128::MAX, u128::MAX),
            (1, u128::MAX),
        ];
        for (a, b) in cases {
            let mut x = n(a);
            add_assign(&mut x, &n(b));
            assert_eq!(x, add(&n(a), &n(b)), "{a}+{b}");
        }
        // carry propagating past the end of the shorter addend
        let mut x = vec![u64::MAX, u64::MAX, 5];
        add_assign(&mut x, &[1]);
        assert_eq!(x, vec![0, 0, 6]);
    }

    #[test]
    fn sub_assign_matches_sub() {
        let cases = [
            (7u128, 7u128),
            (1u128 << 64, 1),
            (1u128 << 127, 1),
            (u128::MAX, u128::MAX - 1),
            (9, 0),
        ];
        for (a, b) in cases {
            let mut x = n(a);
            sub_assign(&mut x, &n(b));
            assert_eq!(x, sub(&n(a), &n(b)), "{a}-{b}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        // Widths that are aligned, straddling, and > one limb.
        for slot_bits in [1u64, 7, 17, 63, 64, 65, 100, 128, 200] {
            let max = if slot_bits >= 128 { u128::MAX } else { (1u128 << slot_bits) - 1 };
            let slots: Vec<Vec<Limb>> = [0u128, 1, 2, max, max / 3, 0, max]
                .iter()
                .map(|&v| n(v & max))
                .collect();
            let refs: Vec<&[Limb]> = slots.iter().map(Vec::as_slice).collect();
            let packed = pack_slots(&refs, slot_bits);
            let back = unpack_slots(&packed, slot_bits, slots.len());
            assert_eq!(back, slots, "slot_bits {slot_bits}");
        }
    }

    #[test]
    fn pack_is_evaluation_at_two_to_b() {
        // pack([a, b, c], w) == a + (b << w) + (c << 2w)
        let slots = [n(0xdead), n(0xbeef_1234), n(0)];
        let refs: Vec<&[Limb]> = slots.iter().map(Vec::as_slice).collect();
        let w = 37;
        let packed = pack_slots(&refs, w);
        let expect = add(&slots[0], &shl(&slots[1], w));
        assert_eq!(packed, expect);
    }

    #[test]
    fn unpack_reads_zeros_past_the_end() {
        let packed = n(5);
        let slots = unpack_slots(&packed, 64, 4);
        assert_eq!(slots[0], n(5));
        assert!(slots[1..].iter().all(|s| s.is_empty()));
        // zero input, zero slots requested
        assert!(unpack_slots(&[], 10, 0).is_empty());
    }

    /// Reference signed packing: `Σ cᵢ·2^{i·w}` as (negative, magnitude).
    fn pack_signed_ref(coeffs: &[i128], w: u64) -> (bool, Vec<Limb>) {
        use std::cmp::Ordering;
        let mut pos: Vec<Limb> = Vec::new();
        let mut neg: Vec<Limb> = Vec::new();
        for (i, &c) in coeffs.iter().enumerate() {
            let term = shl(&n(c.unsigned_abs()), i as u64 * w);
            if c >= 0 {
                pos = add(&pos, &term);
            } else {
                neg = add(&neg, &term);
            }
        }
        match cmp(&pos, &neg) {
            Ordering::Less => (true, sub(&neg, &pos)),
            _ => (false, sub(&pos, &neg)),
        }
    }

    #[test]
    fn signed_unpack_decodes_balanced_residues() {
        // Mixed signs across aligned and straddling widths; every |c|
        // is below 2^(w−1) as the balanced representation requires.
        for w in [8u64, 17, 63, 64, 65, 100] {
            let half = 1i128 << (w.min(100) - 1);
            let cases: Vec<Vec<i128>> = vec![
                vec![-1, 1],
                vec![-1],
                vec![1, -1, 1, -1],
                vec![0, -5, 0, 7, 0],
                vec![half - 1, -(half - 1), half - 1],
                vec![-3, 0, 0, -(half - 1)],
            ];
            for coeffs in cases {
                let (negative, mag) = pack_signed_ref(&coeffs, w);
                // Unpack |N|; a negative N decodes to the negated vector.
                let got = unpack_slots_signed(&mag, w, coeffs.len());
                for (i, (neg_i, m)) in got.iter().enumerate() {
                    let expect = if negative { -coeffs[i] } else { coeffs[i] };
                    let expect_mag = n(expect.unsigned_abs());
                    assert_eq!(*m, expect_mag, "w={w} {coeffs:?} slot {i}");
                    assert_eq!(*neg_i, expect < 0, "w={w} {coeffs:?} slot {i}");
                }
            }
        }
    }

    #[test]
    fn signed_unpack_borrows_past_the_physical_end() {
        // N = −1 + 2^w: one physical field (2^w − 1) but two logical
        // coefficients; the borrow materializes c₁ = 1 from a phantom
        // zero field.
        let w = 64u64;
        let mag = n(u64::MAX as u128);
        let got = unpack_slots_signed(&mag, w, 2);
        assert_eq!(got[0], (true, n(1)));
        assert_eq!(got[1], (false, n(1)));
    }

    #[test]
    fn low_bits_detection() {
        let x = n(0b1000);
        assert!(!low_bits_nonzero(&x, 3));
        assert!(low_bits_nonzero(&x, 4));
        assert!(low_bits_nonzero(&n(1u128 << 64), 65));
        assert!(!low_bits_nonzero(&n(1u128 << 64), 64));
    }
}
