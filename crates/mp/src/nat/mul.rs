//! Schoolbook multiplication of magnitudes — the default backend kernel.
//!
//! Quadratic: multiplying a `p`-bit by a `q`-bit integer costs
//! `Θ(p·q)` bit operations, matching the UNIX `mp` package whose
//! timings the paper's Section 4 analysis models — which is why this
//! kernel stays the default. The subquadratic alternative lives in
//! [`super::kmul`] (Karatsuba, opt-in via [`crate::backend`]) and also
//! serves as the sub-threshold base case of its recursion; the
//! `rr-model` predictors are stated in multiplication events and bit
//! lengths, which [`crate::metrics`] records identically under either
//! kernel.

use super::{normalized, trim};
use crate::limb::{mac, Limb};

/// Product of two magnitudes.
pub fn mul(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let mut out = Vec::new();
    mul_into(a, b, &mut out);
    out
}

/// Schoolbook product written into `out`.
///
/// `out` is cleared and every limb of the product is written before any
/// is read back, so a dirty scratch buffer (see [`crate::scratch`]) is a
/// valid destination; its spare capacity is reused, never read. The
/// operands may alias each other (squaring passes `a` twice) but, as the
/// borrow checker already enforces for safe callers, neither may alias
/// `out`.
pub fn mul_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    // Keep the inner loop running over the longer operand for better
    // locality of the carry chain.
    let (outer, inner) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.resize(a.len() + b.len(), 0);
    for (i, &x) in outer.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &y) in inner.iter().enumerate() {
            let (lo, hi) = mac(x, y, out[i + j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        // Propagate the final carry; it cannot run off the end because the
        // full product fits in a.len() + b.len() limbs.
        let mut k = i + inner.len();
        while carry != 0 {
            let (s, c) = out[k].overflowing_add(carry);
            out[k] = s;
            carry = c as Limb;
            k += 1;
        }
    }
    trim(out);
}

/// Product of a magnitude and a single limb.
pub fn mul_limb(a: &[Limb], m: Limb) -> Vec<Limb> {
    if a.is_empty() || m == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry: Limb = 0;
    for &x in a {
        let (lo, hi) = mac(x, m, carry, 0);
        out.push(lo);
        carry = hi;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Square of a magnitude (schoolbook; same cost model as [`mul`]).
pub fn square(a: &[Limb]) -> Vec<Limb> {
    mul(a, a)
}

/// In-place multiply-accumulate used by Algorithm D's trial subtraction:
/// subtracts `q * v` from the `v.len() + 1` limbs of `u` starting at
/// offset 0, returning the final borrow.
pub(crate) fn sub_mul_limb(u: &mut [Limb], v: &[Limb], q: Limb) -> Limb {
    debug_assert_eq!(u.len(), v.len() + 1);
    let mut borrow: Limb = 0; // borrow + carry of q*v, ≤ 2^64 - 1
    for (ui, &vi) in u.iter_mut().zip(v) {
        // t = q*vi + borrow fits in 128 bits.
        let t = q as u128 * vi as u128 + borrow as u128;
        let (lo, hi) = ((t as Limb), (t >> 64) as Limb);
        let (d, under) = ui.overflowing_sub(lo);
        *ui = d;
        borrow = hi + under as Limb; // ≤ 2^64-1: hi ≤ 2^64-2 when under can be 1
    }
    let last = u.len() - 1;
    let (d, under) = u[last].overflowing_sub(borrow);
    u[last] = d;
    under as Limb
}

/// Adds `v` into the `v.len() + 1` limbs of `u` (Algorithm D's add-back),
/// returning the final carry (always consumed by the preceding borrow).
pub(crate) fn add_back(u: &mut [Limb], v: &[Limb]) -> Limb {
    debug_assert_eq!(u.len(), v.len() + 1);
    let mut carry: Limb = 0;
    for (ui, &vi) in u.iter_mut().zip(v) {
        let s = *ui as u128 + vi as u128 + carry as u128;
        *ui = s as Limb;
        carry = (s >> 64) as Limb;
    }
    let last = u.len() - 1;
    let (s, c) = u[last].overflowing_add(carry);
    u[last] = s;
    c as Limb
}

/// Convenience wrapper producing a normalized result from possibly
/// denormalized inputs (used by tests). Dispatches through the selected
/// backend, so under `Fast` large products divide-and-conquer.
pub fn mul_normalizing(a: Vec<Limb>, b: Vec<Limb>) -> Vec<Limb> {
    super::mul_auto(&normalized(a), &normalized(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat;

    fn n(v: u128) -> Vec<Limb> {
        nat::normalized(vec![v as Limb, (v >> 64) as Limb])
    }

    fn val(a: &[Limb]) -> u128 {
        assert!(a.len() <= 2, "value too large for u128");
        a.first().copied().unwrap_or(0) as u128
            | (a.get(1).copied().unwrap_or(0) as u128) << 64
    }

    #[test]
    fn small_products_match_u128() {
        let cases: &[(u128, u128)] = &[
            (0, 0),
            (0, 7),
            (1, 1),
            (12345, 6789),
            (u64::MAX as u128, u64::MAX as u128),
            (u64::MAX as u128, 2),
            ((1u128 << 100) - 3, 5),
        ];
        for &(x, y) in cases {
            if x.checked_mul(y).is_some() {
                assert_eq!(val(&mul(&n(x), &n(y))), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn max_times_max_two_limbs() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let p = mul(&n(u128::MAX), &n(u128::MAX));
        assert_eq!(p, vec![1, 0, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn mul_limb_matches_mul() {
        for &m in &[0u64, 1, 7, u64::MAX] {
            let a = n(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
            assert_eq!(mul_limb(&a, m), mul(&a, &n(m as u128)));
        }
    }

    #[test]
    fn square_matches_mul() {
        let a = n(0xdead_beef_cafe_babe_1234_5678_9abc_def0);
        assert_eq!(square(&a), mul(&a, &a));
    }

    #[test]
    fn commutative_on_uneven_lengths() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![9, 8];
        assert_eq!(mul(&a, &b), mul(&b, &a));
    }

    #[test]
    fn distributes_over_add() {
        let a = n(0xffff_ffff_ffff_ffff_ffff);
        let b = n(0x1234_5678_9abc);
        let c = n(0xfedc_ba98_7654_3210);
        let lhs = mul(&a, &nat::add(&b, &c));
        let rhs = nat::add(&mul(&a, &b), &mul(&a, &c));
        assert_eq!(lhs, rhs);
    }
}
