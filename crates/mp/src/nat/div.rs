//! Division of magnitudes: short division and Knuth's Algorithm D.
//!
//! Quadratic by design, matching the `mp` package cost model (see crate
//! docs). Returns `(quotient, remainder)` with `0 <= remainder < divisor`.

use super::{cmp, is_zero, normalized, shl, shr, trim};
use crate::limb::{Limb, LIMB_BITS};
use crate::nat::mul::{add_back, sub_mul_limb};
use std::cmp::Ordering;

/// Divides `u` by the single limb `v`; returns `(quotient, remainder)`.
///
/// # Panics
/// Panics if `v == 0`.
pub fn div_rem_limb(u: &[Limb], v: Limb) -> (Vec<Limb>, Limb) {
    assert!(v != 0, "division by zero");
    let mut q = vec![0 as Limb; u.len()];
    let mut rem: Limb = 0;
    for i in (0..u.len()).rev() {
        let cur = ((rem as u128) << LIMB_BITS) | u[i] as u128;
        q[i] = (cur / v as u128) as Limb;
        rem = (cur % v as u128) as Limb;
    }
    trim(&mut q);
    (q, rem)
}

/// Divides `u` by `v`; returns `(quotient, remainder)`.
///
/// # Panics
/// Panics if `v` is zero.
pub fn div_rem(u: &[Limb], v: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    assert!(!is_zero(v), "division by zero");
    if cmp(u, v) == Ordering::Less {
        return (Vec::new(), u.to_vec());
    }
    if v.len() == 1 {
        let (q, r) = div_rem_limb(u, v[0]);
        return (q, normalized(vec![r]));
    }
    knuth_d(u, v)
}

/// Knuth TAOCP Vol. 2, Algorithm 4.3.1 D, for `v.len() >= 2` and `u >= v`.
fn knuth_d(u: &[Limb], v: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let n = v.len();
    let m = u.len() - n;

    // D1: normalize so the divisor's top bit is set. `un` gets one extra
    // high limb to absorb the shift.
    let s = v[n - 1].leading_zeros() as u64;
    let vn = shl(v, s);
    debug_assert_eq!(vn.len(), n);
    let mut un = shl(u, s);
    un.resize(u.len() + 1, 0);

    let vtop = vn[n - 1];
    let vsecond = vn[n - 2];
    let mut q = vec![0 as Limb; m + 1];

    // D2–D7: one quotient limb per iteration, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two limbs of the current remainder
        // window against the top limb of the divisor.
        let numer = ((un[j + n] as u128) << LIMB_BITS) | un[j + n - 1] as u128;
        let mut qhat = numer / vtop as u128;
        let mut rhat = numer % vtop as u128;

        // Refine: q̂ is at most 2 too large; the classic test against the
        // second divisor limb removes almost all overestimates.
        while qhat >> LIMB_BITS != 0
            || qhat * vsecond as u128 > ((rhat << LIMB_BITS) | un[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += vtop as u128;
            if rhat >> LIMB_BITS != 0 {
                break;
            }
        }

        // D4: multiply and subtract q̂·v from the window u[j .. j+n].
        let window = &mut un[j..=j + n];
        let borrow = sub_mul_limb(window, &vn, qhat as Limb);

        // D5–D6: if the subtraction underflowed, q̂ was exactly one too
        // large (rare); decrement and add the divisor back.
        if borrow != 0 {
            qhat -= 1;
            let carry = add_back(window, &vn);
            debug_assert_eq!(carry, 1, "add-back must cancel the borrow");
        }
        q[j] = qhat as Limb;
    }

    // D8: denormalize the remainder.
    un.truncate(n);
    trim(&mut un);
    let r = shr(&un, s);
    trim(&mut q);
    (q, r)
}

/// Exact division: divides `u` by `v` and debug-asserts zero remainder.
pub fn div_exact(u: &[Limb], v: &[Limb]) -> Vec<Limb> {
    let (q, r) = div_rem(u, v);
    debug_assert!(is_zero(&r), "div_exact called with inexact quotient");
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::{self, mul::mul};

    fn n(v: u128) -> Vec<Limb> {
        nat::normalized(vec![v as Limb, (v >> 64) as Limb])
    }

    fn val(a: &[Limb]) -> u128 {
        assert!(a.len() <= 2);
        a.first().copied().unwrap_or(0) as u128
            | (a.get(1).copied().unwrap_or(0) as u128) << 64
    }

    fn check(u: &[Limb], v: &[Limb]) {
        let (q, r) = div_rem(u, v);
        // invariant: u == q*v + r, 0 <= r < v
        assert!(is_zero(&r) || cmp(&r, v) == Ordering::Less);
        let recomposed = nat::add(&mul(&q, v), &r);
        assert_eq!(recomposed, nat::normalized(u.to_vec()));
    }

    #[test]
    fn small_matches_u128() {
        let cases: &[(u128, u128)] = &[
            (0, 1),
            (7, 7),
            (6, 7),
            (100, 3),
            (u128::MAX, 1),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, u128::MAX),
            (u128::MAX - 1, u128::MAX),
            (1u128 << 127, (1u128 << 64) + 1),
        ];
        for &(x, y) in cases {
            let (q, r) = div_rem(&n(x), &n(y));
            assert_eq!(val(&q), x / y, "{x} / {y}");
            assert_eq!(val(&r), x % y, "{x} % {y}");
        }
    }

    #[test]
    fn by_single_limb() {
        let (q, r) = div_rem_limb(&n(1000), 7);
        assert_eq!(val(&q), 142);
        assert_eq!(r, 6);
        let (q, r) = div_rem_limb(&n(u128::MAX), 10);
        assert_eq!(val(&q), u128::MAX / 10);
        assert_eq!(r, (u128::MAX % 10) as Limb);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        div_rem(&n(5), &[]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_limb_divisor_panics() {
        div_rem_limb(&n(5), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "div_exact called with inexact quotient")]
    fn div_exact_rejects_inexact() {
        // 1001 = 7·143, so 1002/7 leaves remainder 1: the debug assertion
        // must fire rather than silently truncate.
        div_exact(&n(1002), &n(7));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = div_rem(&n(5), &n(1u128 << 100));
        assert!(is_zero(&q));
        assert_eq!(val(&r), 5);
    }

    #[test]
    fn multi_limb_identity_check() {
        // Exercise Algorithm D with 3- and 4-limb dividends.
        let a = vec![
            0x0123_4567_89ab_cdef,
            0xfedc_ba98_7654_3210,
            0x0f0f_0f0f_f0f0_f0f0,
            0x1234,
        ];
        let b = vec![0xffff_ffff_0000_0001, 0x8000_0000_0000_0000];
        check(&a, &b);
        check(&b, &a);
        check(&a, &[3]);
        check(&a, &a);
    }

    #[test]
    fn addback_case() {
        // A dividend/divisor pair engineered to trigger the rare D6
        // add-back: u = 2^128 + 2^64 - 1 ... exercised statistically by the
        // property tests too, but this known case from Hacker's Delight
        // hits the branch deterministically.
        let u = vec![0, u64::MAX - 1, u64::MAX >> 1];
        let v = vec![u64::MAX, u64::MAX >> 1];
        check(&u, &v);
    }

    #[test]
    fn exact_division_roundtrip() {
        let a = n(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let b = n(0xffee_ddcc_bbaa_9988);
        let p = mul(&a, &b);
        assert_eq!(div_exact(&p, &a), b);
        assert_eq!(div_exact(&p, &b), a);
    }

    #[test]
    fn long_random_like_sequence() {
        // Deterministic pseudo-random stress using a simple LCG over limbs.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for len_u in 1..6usize {
            for len_v in 1..4usize {
                let u: Vec<Limb> = (0..len_u).map(|_| next()).collect();
                let v: Vec<Limb> = (0..len_v).map(|_| next()).collect();
                let u = nat::normalized(u);
                let v = nat::normalized(v);
                if !is_zero(&v) {
                    check(&u, &v);
                }
            }
        }
    }
}
