//! Karatsuba multiplication of magnitudes — the `Fast` backend kernel.
//!
//! Above [`KARATSUBA_THRESHOLD`] limbs the routines here recurse with the
//! three-multiplication split
//!
//! ```text
//! a·b = z₂·B²ᵐ + z₁·Bᵐ + z₀,   B = 2⁶⁴,
//! z₀ = a₀·b₀,  z₂ = a₁·b₁,  z₁ = (a₀+a₁)(b₀+b₁) − z₀ − z₂,
//! ```
//!
//! and below it fall through to the schoolbook routines in
//! [`super::mul`], whose constant factor wins on small operands. Very
//! unbalanced products are first cut into balanced chunks of the short
//! operand's length so the recursion always splits near the middle.
//!
//! These functions work on raw limb slices and record **nothing** in
//! [`crate::metrics`]: cost attribution happens once per `Int`
//! multiplication in `Int::mul`/`Int::square`, before any kernel runs,
//! which is what keeps the paper's predicted-vs-observed counts
//! identical under both backends (see [`crate::backend`]).

use super::{mul, trim};
use crate::limb::Limb;

/// Limb count at or above which the split pays for its extra additions.
///
/// Calibrated with `cargo bench -p rr-bench --bench kernels` (sweep
/// `kmul_threshold_sweep`); see EXPERIMENTS.md for the measured
/// crossover on the reference machine.
pub const KARATSUBA_THRESHOLD: usize = 48;

/// Product of two magnitudes (Karatsuba above [`KARATSUBA_THRESHOLD`]).
///
/// Accepts denormalized inputs; the result is normalized, matching
/// [`mul::mul`] bit-for-bit.
pub fn mul(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    mul_with_threshold(a, b, KARATSUBA_THRESHOLD)
}

/// Square of a magnitude (Karatsuba above [`KARATSUBA_THRESHOLD`]).
pub fn square(a: &[Limb]) -> Vec<Limb> {
    sqr_with_threshold(a, KARATSUBA_THRESHOLD)
}

/// [`mul`] writing into `out` (cleared and fully overwritten; dirty
/// scratch buffers are valid destinations — see [`crate::scratch`]).
pub fn mul_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>) {
    mul_with_threshold_into(a, b, KARATSUBA_THRESHOLD, out);
}

/// [`square`] writing into `out` (cleared and fully overwritten).
pub fn square_into(a: &[Limb], out: &mut Vec<Limb>) {
    sqr_with_threshold_into(a, KARATSUBA_THRESHOLD, out);
}

/// [`mul`] with an explicit recursion threshold.
///
/// The differential tests drive this with tiny thresholds to force deep
/// recursion on small operands; `threshold` is clamped to ≥ 2 (a
/// one-limb split cannot recurse).
pub fn mul_with_threshold(a: &[Limb], b: &[Limb], threshold: usize) -> Vec<Limb> {
    let mut out = Vec::new();
    mul_with_threshold_into(a, b, threshold, &mut out);
    out
}

/// [`mul_with_threshold`] writing into `out`.
pub fn mul_with_threshold_into(a: &[Limb], b: &[Limb], threshold: usize, out: &mut Vec<Limb>) {
    let (a, b) = (trimmed(a), trimmed(b));
    let threshold = threshold.max(2);
    if a.len().min(b.len()) < threshold {
        mul::mul_into(a, b, out);
        return;
    }
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if long.len() >= 2 * short.len() {
        mul_chunked_into(long, short, threshold, out);
        return;
    }
    out.clear();
    out.resize(long.len() + short.len(), 0);
    karatsuba(long, short, threshold, out);
    trim(out);
}

/// [`square`] with an explicit recursion threshold (clamped to ≥ 2).
pub fn sqr_with_threshold(a: &[Limb], threshold: usize) -> Vec<Limb> {
    let mut out = Vec::new();
    sqr_with_threshold_into(a, threshold, &mut out);
    out
}

/// [`sqr_with_threshold`] writing into `out`.
pub fn sqr_with_threshold_into(a: &[Limb], threshold: usize, out: &mut Vec<Limb>) {
    let a = trimmed(a);
    let threshold = threshold.max(2);
    if a.len() < threshold {
        mul::mul_into(a, a, out);
        return;
    }
    // a² = z₂·B²ᵐ + z₁·Bᵐ + z₀ with z₁ = (a₀+a₁)² − z₀ − z₂ — every
    // sub-product is itself a square, and z₁ never underflows. The
    // per-level temporaries come from the thread's scratch arena and go
    // back before this level returns (LIFO), so a whole recursion tree
    // cycles through a handful of buffers.
    let m = a.len() / 2;
    let (a0, a1) = (trimmed(&a[..m]), trimmed(&a[m..]));
    let mut z0 = crate::scratch::take(2 * a0.len());
    sqr_with_threshold_into(a0, threshold, &mut z0);
    let mut z2 = crate::scratch::take(2 * a1.len());
    sqr_with_threshold_into(a1, threshold, &mut z2);
    let mut s = crate::scratch::take(a0.len().max(a1.len()) + 1);
    super::add_into(a0, a1, &mut s);
    let mut z1 = crate::scratch::take(2 * s.len());
    sqr_with_threshold_into(&s, threshold, &mut z1);
    super::sub_assign(&mut z1, &z0);
    super::sub_assign(&mut z1, &z2);

    out.clear();
    out.resize(2 * a.len(), 0);
    add_at(out, 0, &z0);
    add_at(out, m, &z1);
    add_at(out, 2 * m, &z2);
    trim(out);
    crate::scratch::put(z1);
    crate::scratch::put(s);
    crate::scratch::put(z2);
    crate::scratch::put(z0);
}

/// Balanced Karatsuba step; requires `long.len() >= short.len()` and
/// `short.len() > long.len() / 2`, accumulates the product into `out`
/// (all zero on entry, `long.len() + short.len()` limbs).
fn karatsuba(long: &[Limb], short: &[Limb], threshold: usize, out: &mut [Limb]) {
    let m = long.len() / 2;
    debug_assert!(m >= 1 && short.len() > m);
    let (a0, a1) = (trimmed(&long[..m]), trimmed(&long[m..]));
    let (b0, b1) = (trimmed(&short[..m]), trimmed(&short[m..]));

    // All five temporaries of this level come from the scratch arena
    // and are returned before the level unwinds.
    let mut z0 = crate::scratch::take(a0.len() + b0.len());
    mul_with_threshold_into(a0, b0, threshold, &mut z0);
    let mut z2 = crate::scratch::take(a1.len() + b1.len());
    mul_with_threshold_into(a1, b1, threshold, &mut z2);
    let mut sa = crate::scratch::take(a0.len().max(a1.len()) + 1);
    super::add_into(a0, a1, &mut sa);
    let mut sb = crate::scratch::take(b0.len().max(b1.len()) + 1);
    super::add_into(b0, b1, &mut sb);
    let mut z1 = crate::scratch::take(sa.len() + sb.len());
    mul_with_threshold_into(&sa, &sb, threshold, &mut z1);
    super::sub_assign(&mut z1, &z0);
    super::sub_assign(&mut z1, &z2);

    add_at(out, 0, &z0);
    add_at(out, m, &z1);
    add_at(out, 2 * m, &z2);
    crate::scratch::put(z1);
    crate::scratch::put(sb);
    crate::scratch::put(sa);
    crate::scratch::put(z2);
    crate::scratch::put(z0);
}

/// Unbalanced product: cuts `long` into `short.len()`-limb chunks so
/// each partial product recurses on balanced operands. One scratch
/// buffer holds every partial product in turn.
fn mul_chunked_into(long: &[Limb], short: &[Limb], threshold: usize, out: &mut Vec<Limb>) {
    out.clear();
    out.resize(long.len() + short.len(), 0);
    let mut p = crate::scratch::take(2 * short.len());
    for (i, chunk) in long.chunks(short.len()).enumerate() {
        mul_with_threshold_into(chunk, short, threshold, &mut p);
        add_at(out, i * short.len(), &p);
    }
    crate::scratch::put(p);
    trim(out);
}

/// Adds `p` into `out` starting `offset` limbs up, propagating the
/// carry. The caller guarantees the running sum fits in `out` (partial
/// sums of a product never exceed the full product). Shared with the
/// fork-join kernels in [`super::parmul`], whose combine step is the
/// same limb-offset accumulation.
pub(super) fn add_at(out: &mut [Limb], offset: usize, p: &[Limb]) {
    let mut carry: Limb = 0;
    let mut i = offset;
    for &x in p {
        let s = out[i] as u128 + x as u128 + carry as u128;
        out[i] = s as Limb;
        carry = (s >> 64) as Limb;
        i += 1;
    }
    while carry != 0 {
        let (s, c) = out[i].overflowing_add(carry);
        out[i] = s;
        carry = c as Limb;
        i += 1;
    }
}

/// Slice view with trailing zero limbs dropped (split halves of a
/// normalized magnitude are not themselves normalized).
pub(super) fn trimmed(mut a: &[Limb]) -> &[Limb] {
    while a.last() == Some(&0) {
        a = &a[..a.len() - 1];
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agrees(a: &[Limb], b: &[Limb], threshold: usize) -> bool {
        mul_with_threshold(a, b, threshold) == mul::mul(a, b)
    }

    fn limbs(pattern: impl IntoIterator<Item = u64>) -> Vec<Limb> {
        pattern.into_iter().collect()
    }

    #[test]
    fn trivial_operands() {
        for t in [2usize, 3, 24] {
            assert_eq!(mul_with_threshold(&[], &[5], t), Vec::<Limb>::new());
            assert_eq!(mul_with_threshold(&[5], &[], t), Vec::<Limb>::new());
            assert_eq!(mul_with_threshold(&[1], &[7], t), vec![7]);
            assert_eq!(sqr_with_threshold(&[], t), Vec::<Limb>::new());
        }
    }

    #[test]
    fn balanced_recursion_matches_schoolbook() {
        // All-ones limbs maximize internal carries.
        let a = limbs((0..9).map(|_| u64::MAX));
        let b = limbs((0..8).map(|i| u64::MAX - i));
        assert!(agrees(&a, &b, 2));
        assert!(agrees(&a, &b, 3));
    }

    #[test]
    fn unbalanced_chunking_matches_schoolbook() {
        let a = limbs((1..=25u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let b = limbs([u64::MAX, 1, u64::MAX]);
        assert!(agrees(&a, &b, 2));
        assert!(agrees(&b, &a, 2));
    }

    #[test]
    fn denormalized_inputs_are_handled() {
        let a = limbs([3, 0, 0]);
        let b = limbs([0, 7, 0]);
        assert_eq!(
            mul_with_threshold(&a, &b, 2),
            mul::mul(&[3], &[0, 7])
        );
    }

    #[test]
    fn square_matches_mul_deep_recursion() {
        let a = limbs((0..17).map(|i| u64::MAX - (i * i) as u64));
        assert_eq!(sqr_with_threshold(&a, 2), mul::mul(&a, &a));
        assert_eq!(sqr_with_threshold(&a, 24), mul::mul(&a, &a));
    }

    #[test]
    fn default_threshold_entry_points() {
        let a = limbs((0..40).map(|i| 0xdead_beef ^ (i as u64) << 17));
        let b = limbs((0..33).map(|i| u64::MAX - i));
        assert_eq!(mul(&a, &b), mul::mul(&a, &b));
        assert_eq!(square(&a), mul::square(&a));
    }
}
