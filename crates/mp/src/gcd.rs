//! Greatest common divisor on [`Int`].

use crate::{Int, Sign};

/// Binary (Stein) GCD of `|a|` and `|b|`; `gcd(0, 0) = 0`.
///
/// Uses only shifts and subtractions, so it records no multiplications —
/// appropriate, since the paper's cost model attributes gcd-free
/// normalization work to the phases that need it.
pub fn gcd(a: &Int, b: &Int) -> Int {
    let mut a = a.abs();
    let mut b = b.abs();
    if a.is_zero() {
        return b;
    }
    if b.is_zero() {
        return a;
    }
    let za = a.trailing_zeros().expect("nonzero");
    let zb = b.trailing_zeros().expect("nonzero");
    let common = za.min(zb);
    a = a.shr_floor(za);
    b = b.shr_floor(zb);
    // Invariant: a, b odd.
    loop {
        if a.cmp_abs(&b) == std::cmp::Ordering::Less {
            std::mem::swap(&mut a, &mut b);
        }
        a -= &b;
        if a.is_zero() {
            break;
        }
        a = a.shr_floor(a.trailing_zeros().expect("nonzero"));
    }
    debug_assert!(b.sign() == Sign::Positive);
    b << common
}

/// Least common multiple of `|a|` and `|b|`; `lcm(x, 0) = 0`.
pub fn lcm(a: &Int, b: &Int) -> Int {
    if a.is_zero() || b.is_zero() {
        return Int::zero();
    }
    let g = gcd(a, b);
    (a.abs().div_exact(&g)) * b.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(a: i128, b: i128) -> i128 {
        gcd(&Int::from(a), &Int::from(b)).to_i128().unwrap()
    }

    #[test]
    fn small_cases() {
        assert_eq!(g(0, 0), 0);
        assert_eq!(g(0, 5), 5);
        assert_eq!(g(5, 0), 5);
        assert_eq!(g(12, 18), 6);
        assert_eq!(g(-12, 18), 6);
        assert_eq!(g(12, -18), 6);
        assert_eq!(g(-12, -18), 6);
        assert_eq!(g(17, 31), 1);
        assert_eq!(g(1 << 20, 1 << 13), 1 << 13);
    }

    #[test]
    fn large_common_factor() {
        let f = Int::from(1_000_000_007u64).pow(3);
        let a = &f * Int::from(12u32);
        let b = &f * Int::from(18u32);
        assert_eq!(gcd(&a, &b), f * Int::from(6u32));
    }

    #[test]
    fn lcm_cases() {
        assert_eq!(lcm(&Int::from(4u32), &Int::from(6u32)), Int::from(12u32));
        assert_eq!(lcm(&Int::from(0u32), &Int::from(6u32)), Int::zero());
        assert_eq!(lcm(&Int::from(-4i32), &Int::from(6u32)), Int::from(12u32));
    }

    #[test]
    fn gcd_divides_both_and_is_maximal() {
        let a = Int::from(2u32).pow(40) * Int::from(3u32).pow(12) * Int::from(7u32);
        let b = Int::from(2u32).pow(35) * Int::from(3u32).pow(20) * Int::from(11u32);
        let g = gcd(&a, &b);
        assert!(a.divisible_by(&g));
        assert!(b.divisible_by(&g));
        assert_eq!(g, Int::from(2u32).pow(35) * Int::from(3u32).pow(12));
    }
}
