//! Per-phase operation counters for the paper's cost model.
//!
//! Narendran & Tiwari instrumented their implementation to count the
//! multiplications performed in each phase of the algorithm, and to
//! measure the bit complexity of those multiplications (the product of the
//! operand bit lengths), producing Figures 2–7 of the paper. This module
//! is the equivalent instrumentation.
//!
//! Every [`crate::Int`] multiplication and division records one event under
//! the thread's *current phase*, set with [`set_phase`] or scoped with
//! [`with_phase`]. Counters are per-thread (each thread owns its cache
//! line; only the owner writes), so instrumentation stays off the
//! contention path of the parallel solver. [`snapshot`] aggregates across
//! all threads that ever recorded an event; experiments measure a region
//! by subtracting the snapshots taken around it.
//!
//! ```
//! use rr_mp::{metrics, Int};
//!
//! let before = metrics::snapshot();
//! let p = metrics::with_phase(metrics::Phase::Newton, || {
//!     Int::from(123456789u64) * Int::from(987654321u64)
//! });
//! let cost = metrics::snapshot() - before;
//! assert_eq!(p, Int::from(123456789u64 * 987654321u64));
//! assert_eq!(cost.phase(metrics::Phase::Newton).mul_count, 1);
//! assert_eq!(cost.phase(metrics::Phase::Bisection).mul_count, 0);
//! ```

use parking_lot::Mutex;
use std::cell::Cell;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Algorithm phase an arithmetic operation is attributed to.
///
/// The variants mirror the task kinds of the paper's Section 3 plus the
/// workload generator and the sequential comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Anything not otherwise attributed (the default for a fresh thread).
    Other = 0,
    /// Workload generation: characteristic polynomials etc.
    CharPoly = 1,
    /// Precomputation of the remainder and quotient sequences (Sec 3.1).
    RemainderSeq = 2,
    /// Bottom-up tree polynomial matrix products (Sec 3.2, COMPUTEPOLY).
    TreePoly = 3,
    /// Merging sorted child roots (SORT tasks).
    Sort = 4,
    /// Evaluations at interleaving points (PREINTERVAL tasks).
    PreInterval = 5,
    /// Double-exponential sieve evaluations (INTERVAL tasks, phase 1).
    Sieve = 6,
    /// Bisection evaluations (INTERVAL tasks, phase 2).
    Bisection = 7,
    /// Newton iteration evaluations (INTERVAL tasks, phase 3).
    Newton = 8,
    /// The sequential comparator (`rr-baseline`, the PARI stand-in).
    Baseline = 9,
}

/// Number of phases (length of per-phase arrays).
pub const NUM_PHASES: usize = 10;

/// All phases, in index order.
pub const ALL_PHASES: [Phase; NUM_PHASES] = [
    Phase::Other,
    Phase::CharPoly,
    Phase::RemainderSeq,
    Phase::TreePoly,
    Phase::Sort,
    Phase::PreInterval,
    Phase::Sieve,
    Phase::Bisection,
    Phase::Newton,
    Phase::Baseline,
];

impl Phase {
    /// Short human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::CharPoly => "charpoly",
            Phase::RemainderSeq => "remainder",
            Phase::TreePoly => "treepoly",
            Phase::Sort => "sort",
            Phase::PreInterval => "preinterval",
            Phase::Sieve => "sieve",
            Phase::Bisection => "bisection",
            Phase::Newton => "newton",
            Phase::Baseline => "baseline",
        }
    }
}

#[derive(Default)]
struct ThreadCounters {
    mul_count: [AtomicU64; NUM_PHASES],
    mul_bits: [AtomicU64; NUM_PHASES],
    div_count: [AtomicU64; NUM_PHASES],
    div_bits: [AtomicU64; NUM_PHASES],
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadCounters>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadCounters>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(Phase::Other as usize) };
    static LOCAL: Arc<ThreadCounters> = {
        let c = Arc::new(ThreadCounters::default());
        registry().lock().push(Arc::clone(&c));
        c
    };
}

/// Sets the calling thread's current phase, returning the previous one.
pub fn set_phase(p: Phase) -> Phase {
    CURRENT_PHASE.with(|c| {
        let prev = c.replace(p as usize);
        ALL_PHASES[prev]
    })
}

/// Returns the calling thread's current phase.
pub fn current_phase() -> Phase {
    CURRENT_PHASE.with(|c| ALL_PHASES[c.get()])
}

/// Runs `f` with the current phase set to `p`, restoring the previous
/// phase afterwards (also on unwind).
pub fn with_phase<R>(p: Phase, f: impl FnOnce() -> R) -> R {
    struct Restore(Phase);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_phase(self.0);
        }
    }
    let _restore = Restore(set_phase(p));
    f()
}

/// Records one multiplication of operands with the given bit lengths.
/// Called from `Int`'s arithmetic; not usually called directly.
#[inline]
pub fn record_mul(a_bits: u64, b_bits: u64) {
    let phase = CURRENT_PHASE.with(Cell::get);
    LOCAL.with(|c| {
        c.mul_count[phase].fetch_add(1, Ordering::Relaxed);
        c.mul_bits[phase].fetch_add(a_bits.saturating_mul(b_bits), Ordering::Relaxed);
    });
}

/// Records one division; the bit cost model is `(‖a‖ − ‖b‖ + 1)·‖b‖`
/// (quotient length times divisor length, the Algorithm D work estimate).
#[inline]
pub fn record_div(a_bits: u64, b_bits: u64) {
    let phase = CURRENT_PHASE.with(Cell::get);
    let q_bits = a_bits.saturating_sub(b_bits) + 1;
    LOCAL.with(|c| {
        c.div_count[phase].fetch_add(1, Ordering::Relaxed);
        c.div_bits[phase].fetch_add(q_bits.saturating_mul(b_bits), Ordering::Relaxed);
    });
}

/// Cost totals for one phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCost {
    /// Number of multiprecision multiplications.
    pub mul_count: u64,
    /// Sum over multiplications of `‖a‖·‖b‖` (bit complexity).
    pub mul_bits: u64,
    /// Number of multiprecision divisions.
    pub div_count: u64,
    /// Sum over divisions of the Algorithm D work estimate.
    pub div_bits: u64,
}

impl Sub for PhaseCost {
    type Output = PhaseCost;
    fn sub(self, rhs: PhaseCost) -> PhaseCost {
        PhaseCost {
            mul_count: self.mul_count - rhs.mul_count,
            mul_bits: self.mul_bits - rhs.mul_bits,
            div_count: self.div_count - rhs.div_count,
            div_bits: self.div_bits - rhs.div_bits,
        }
    }
}

impl Add for PhaseCost {
    type Output = PhaseCost;
    fn add(self, rhs: PhaseCost) -> PhaseCost {
        PhaseCost {
            mul_count: self.mul_count + rhs.mul_count,
            mul_bits: self.mul_bits + rhs.mul_bits,
            div_count: self.div_count + rhs.div_count,
            div_bits: self.div_bits + rhs.div_bits,
        }
    }
}

impl AddAssign for PhaseCost {
    fn add_assign(&mut self, rhs: PhaseCost) {
        *self = *self + rhs;
    }
}

/// A point-in-time aggregation of all threads' counters.
///
/// Snapshots are monotone, so the cost of a region of code is the
/// difference of the snapshots taken after and before it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostSnapshot {
    phases: [PhaseCost; NUM_PHASES],
}

impl CostSnapshot {
    /// Cost recorded under `p`.
    pub fn phase(&self, p: Phase) -> PhaseCost {
        self.phases[p as usize]
    }

    /// Sum over all phases.
    pub fn total(&self) -> PhaseCost {
        self.phases
            .iter()
            .fold(PhaseCost::default(), |acc, &c| acc + c)
    }

    /// Iterator over `(phase, cost)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseCost)> + '_ {
        ALL_PHASES.iter().map(move |&p| (p, self.phase(p)))
    }
}

impl Sub for CostSnapshot {
    type Output = CostSnapshot;
    fn sub(self, rhs: CostSnapshot) -> CostSnapshot {
        let mut out = CostSnapshot::default();
        for i in 0..NUM_PHASES {
            out.phases[i] = self.phases[i] - rhs.phases[i];
        }
        out
    }
}

/// Aggregates the counters of every thread that has recorded an event.
pub fn snapshot() -> CostSnapshot {
    let mut out = CostSnapshot::default();
    for c in registry().lock().iter() {
        for i in 0..NUM_PHASES {
            out.phases[i] += PhaseCost {
                mul_count: c.mul_count[i].load(Ordering::Relaxed),
                mul_bits: c.mul_bits[i].load(Ordering::Relaxed),
                div_count: c.div_count[i].load(Ordering::Relaxed),
                div_bits: c.div_bits[i].load(Ordering::Relaxed),
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Int;

    #[test]
    fn with_phase_restores_previous() {
        set_phase(Phase::Other);
        with_phase(Phase::Sieve, || {
            assert_eq!(current_phase(), Phase::Sieve);
            with_phase(Phase::Newton, || {
                assert_eq!(current_phase(), Phase::Newton);
            });
            assert_eq!(current_phase(), Phase::Sieve);
        });
        assert_eq!(current_phase(), Phase::Other);
    }

    #[test]
    fn with_phase_restores_on_panic() {
        set_phase(Phase::Other);
        let r = std::panic::catch_unwind(|| {
            with_phase(Phase::Bisection, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(current_phase(), Phase::Other);
    }

    #[test]
    fn snapshot_diff_counts_region() {
        let a = Int::from(u64::MAX) * Int::from(u64::MAX); // warm TLS
        drop(a);
        let before = snapshot();
        with_phase(Phase::TreePoly, || {
            let x = Int::from(12345u64);
            let y = Int::from(99999u64);
            let _ = &x * &y;
            let _ = &x * &y;
        });
        let d = snapshot() - before;
        assert_eq!(d.phase(Phase::TreePoly).mul_count, 2);
        // bit cost of 12345 (14 bits) * 99999 (17 bits), twice
        assert_eq!(d.phase(Phase::TreePoly).mul_bits, 2 * 14 * 17);
    }

    #[test]
    fn divisions_recorded_separately() {
        let before = snapshot();
        with_phase(Phase::Baseline, || {
            let x = Int::from(1_000_000_007u64);
            let y = Int::from(97u64);
            let _ = &x / &y;
        });
        let d = snapshot() - before;
        assert_eq!(d.phase(Phase::Baseline).div_count, 1);
        assert_eq!(d.phase(Phase::Baseline).mul_count, 0);
    }

    #[test]
    fn cross_thread_aggregation() {
        let before = snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    with_phase(Phase::PreInterval, || {
                        let _ = Int::from(7u64) * Int::from(9u64);
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let d = snapshot() - before;
        assert_eq!(d.phase(Phase::PreInterval).mul_count, 4);
    }

    #[test]
    fn total_sums_phases() {
        let before = snapshot();
        with_phase(Phase::Sort, || {
            let _ = Int::from(3u64) * Int::from(5u64);
        });
        with_phase(Phase::Sieve, || {
            let _ = Int::from(3u64) * Int::from(5u64);
        });
        let d = snapshot() - before;
        assert_eq!(d.total().mul_count, 2);
    }
}
