//! Per-phase operation counters for the paper's cost model.
//!
//! Narendran & Tiwari instrumented their implementation to count the
//! multiplications performed in each phase of the algorithm, and to
//! measure the bit complexity of those multiplications (the product of the
//! operand bit lengths), producing Figures 2–7 of the paper. This module
//! is the equivalent instrumentation.
//!
//! Every [`crate::Int`] multiplication and division records one event under
//! the thread's *current phase*, set with [`set_phase`] or scoped with
//! [`with_phase`]. Counters are per-thread (each thread owns its cache
//! line; only the owner writes), so instrumentation stays off the
//! contention path of the parallel solver.
//!
//! ## Sinks: session-scoped and process-global accounting
//!
//! Counters live in a [`MetricsSink`]: a registry of per-thread counter
//! blocks that can be aggregated at any time with
//! [`MetricsSink::snapshot`]. There are two kinds of sink:
//!
//! * **Session sinks** — each [`crate::SolveCtx`] owns a private sink.
//!   While a context is installed on a thread (see
//!   [`crate::SolveCtx::install`]), every event that thread records goes
//!   to the session's sink and *only* there. Concurrent solves therefore
//!   never cross-attribute each other's events, which is what the
//!   per-solve figures (2–7) depend on.
//! * **The process-global default sink** — the compatibility layer.
//!   Arithmetic performed with no context installed (library use outside
//!   a solve, the `rr-baseline` comparator, tests exercising `Int`
//!   directly) records here, and the free function [`snapshot`]
//!   aggregates it, so the historical measure-by-subtraction idiom keeps
//!   working for non-session code.
//!
//! ```
//! use rr_mp::{metrics, Int};
//!
//! let before = metrics::snapshot();
//! let p = metrics::with_phase(metrics::Phase::Newton, || {
//!     Int::from(123456789u64) * Int::from(987654321u64)
//! });
//! let cost = metrics::snapshot() - before;
//! assert_eq!(p, Int::from(123456789u64 * 987654321u64));
//! assert_eq!(cost.phase(metrics::Phase::Newton).mul_count, 1);
//! assert_eq!(cost.phase(metrics::Phase::Bisection).mul_count, 0);
//! ```
//!
//! Session-scoped accounting needs no subtraction — the sink starts
//! empty and [`crate::SolveCtx::snapshot`] is the exact cost of the
//! session:
//!
//! ```
//! use rr_mp::{metrics::Phase, Int, MulBackend, SolveCtx};
//!
//! let ctx = SolveCtx::new(MulBackend::Schoolbook);
//! ctx.run(|| {
//!     rr_mp::metrics::with_phase(Phase::Sieve, || {
//!         let _ = Int::from(11u64) * Int::from(13u64);
//!     })
//! });
//! assert_eq!(ctx.snapshot().phase(Phase::Sieve).mul_count, 1);
//! ```

use parking_lot::Mutex;
use std::cell::Cell;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Algorithm phase an arithmetic operation is attributed to.
///
/// The variants mirror the task kinds of the paper's Section 3 plus the
/// workload generator and the sequential comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Anything not otherwise attributed (the default for a fresh thread).
    Other = 0,
    /// Workload generation: characteristic polynomials etc.
    CharPoly = 1,
    /// Precomputation of the remainder and quotient sequences (Sec 3.1).
    RemainderSeq = 2,
    /// Bottom-up tree polynomial matrix products (Sec 3.2, COMPUTEPOLY).
    TreePoly = 3,
    /// Merging sorted child roots (SORT tasks).
    Sort = 4,
    /// Evaluations at interleaving points (PREINTERVAL tasks).
    PreInterval = 5,
    /// Double-exponential sieve evaluations (INTERVAL tasks, phase 1).
    Sieve = 6,
    /// Bisection evaluations (INTERVAL tasks, phase 2).
    Bisection = 7,
    /// Newton iteration evaluations (INTERVAL tasks, phase 3).
    Newton = 8,
    /// The sequential comparator (`rr-baseline`, the PARI stand-in).
    Baseline = 9,
}

/// Number of phases (length of per-phase arrays).
pub const NUM_PHASES: usize = 10;

/// All phases, in index order.
pub const ALL_PHASES: [Phase; NUM_PHASES] = [
    Phase::Other,
    Phase::CharPoly,
    Phase::RemainderSeq,
    Phase::TreePoly,
    Phase::Sort,
    Phase::PreInterval,
    Phase::Sieve,
    Phase::Bisection,
    Phase::Newton,
    Phase::Baseline,
];

impl Phase {
    /// Short human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::CharPoly => "charpoly",
            Phase::RemainderSeq => "remainder",
            Phase::TreePoly => "treepoly",
            Phase::Sort => "sort",
            Phase::PreInterval => "preinterval",
            Phase::Sieve => "sieve",
            Phase::Bisection => "bisection",
            Phase::Newton => "newton",
            Phase::Baseline => "baseline",
        }
    }
}

#[derive(Default)]
pub(crate) struct ThreadCounters {
    mul_count: [AtomicU64; NUM_PHASES],
    mul_bits: [AtomicU64; NUM_PHASES],
    div_count: [AtomicU64; NUM_PHASES],
    div_bits: [AtomicU64; NUM_PHASES],
    // Kronecker execution counters. Deliberately NOT part of
    // `CostSnapshot`: the paper cost model above must stay identical
    // across polynomial backends (its `PartialEq` backs the
    // backend-invariance assertions), while these describe what the
    // Kronecker path actually executed. Read via `KroneckerStats`.
    kron_muls: AtomicU64,
    kron_packed_bits: AtomicU64,
    // Newton-division execution counters; outside `CostSnapshot` for the
    // same reason (div cost is charged backend-invariantly at the `Int`
    // layer). Read via `NewtonDivStats`.
    newton_divs: AtomicU64,
    newton_recip_iters: AtomicU64,
    newton_corrections: AtomicU64,
    newton_exact_divs: AtomicU64,
    newton_hensel_steps: AtomicU64,
    // Parallel-multiplication execution counters; outside `CostSnapshot`
    // for the same reason (the model charge is recorded at the `Int`
    // layer before the kernel runs, so it cannot vary with `RR_PAR_MUL`).
    // Read via `ParMulStats`.
    parmul_products: AtomicU64,
    parmul_tasks: AtomicU64,
    parmul_steals: AtomicU64,
    parmul_operand_bits: AtomicU64,
    parmul_work_ns: AtomicU64,
    parmul_span_ns: AtomicU64,
    // Physical limb-buffer allocations per phase (scratch-arena cold
    // misses and gate-off acquisitions); outside `CostSnapshot` because
    // they vary with `RR_ARENA` while the model cost must not. Read via
    // `AllocStats`.
    alloc_count: [AtomicU64; NUM_PHASES],
    alloc_bytes: [AtomicU64; NUM_PHASES],
}

impl ThreadCounters {
    #[inline]
    pub(crate) fn record_mul(&self, phase: usize, a_bits: u64, b_bits: u64) {
        self.mul_count[phase].fetch_add(1, Ordering::Relaxed);
        self.mul_bits[phase].fetch_add(a_bits.saturating_mul(b_bits), Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_div(&self, phase: usize, q_bits: u64, b_bits: u64) {
        self.div_count[phase].fetch_add(1, Ordering::Relaxed);
        self.div_bits[phase].fetch_add(q_bits.saturating_mul(b_bits), Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_mul_bulk(&self, phase: usize, count: u64, bits: u64) {
        self.mul_count[phase].fetch_add(count, Ordering::Relaxed);
        self.mul_bits[phase].fetch_add(bits, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_kron(&self, packed_bits: u64) {
        self.kron_muls.fetch_add(1, Ordering::Relaxed);
        self.kron_packed_bits.fetch_add(packed_bits, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_newton_div(&self, recip_iters: u64, corrections: u64) {
        self.newton_divs.fetch_add(1, Ordering::Relaxed);
        self.newton_recip_iters.fetch_add(recip_iters, Ordering::Relaxed);
        self.newton_corrections.fetch_add(corrections, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_newton_exact_div(&self, hensel_steps: u64) {
        self.newton_exact_divs.fetch_add(1, Ordering::Relaxed);
        self.newton_hensel_steps.fetch_add(hensel_steps, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_parmul(
        &self,
        tasks: u64,
        steals: u64,
        operand_bits: u64,
        work_ns: u64,
        span_ns: u64,
    ) {
        self.parmul_products.fetch_add(1, Ordering::Relaxed);
        self.parmul_tasks.fetch_add(tasks, Ordering::Relaxed);
        self.parmul_steals.fetch_add(steals, Ordering::Relaxed);
        self.parmul_operand_bits.fetch_add(operand_bits, Ordering::Relaxed);
        self.parmul_work_ns.fetch_add(work_ns, Ordering::Relaxed);
        self.parmul_span_ns.fetch_add(span_ns, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_alloc(&self, phase: usize, bytes: u64) {
        self.alloc_count[phase].fetch_add(1, Ordering::Relaxed);
        self.alloc_bytes[phase].fetch_add(bytes, Ordering::Relaxed);
    }
}

/// What the Kronecker polynomial-multiplication path actually executed,
/// as opposed to what the paper cost model charged for it.
///
/// Kept separate from [`CostSnapshot`] on purpose: the model counters
/// are asserted bit-identical across polynomial backends, so anything
/// that *varies* with the backend must live outside them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KroneckerStats {
    /// Number of polynomial products routed through Kronecker
    /// substitution (each one is a handful of big-integer
    /// multiplications on packed operands).
    pub kronecker_muls: u64,
    /// Total bits packed across those products (sum over products of
    /// `slot_bits × slots`, both operands).
    pub packed_bits: u64,
}

/// What the Newton division path actually executed, as opposed to the
/// Algorithm D work estimate the paper cost model charged for it.
///
/// Kept separate from [`CostSnapshot`] for the same reason as
/// [`KroneckerStats`]: the model counters are asserted bit-identical
/// across division backends, so anything that varies with `RR_DIV`
/// must live outside them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NewtonDivStats {
    /// Number of divisions routed through the Newton reciprocal (above
    /// the crossover; below it the dispatcher runs Algorithm D and
    /// nothing is counted here).
    pub newton_divs: u64,
    /// Total reciprocal refinement iterations across those divisions
    /// (each is one squaring plus one multiplication via `mul_auto`).
    pub recip_iters: u64,
    /// Total quotient correction steps (expected ≤ 1 per division; the
    /// differential suite watches this stays small).
    pub corrections: u64,
    /// Number of exact divisions routed through the 2-adic (Hensel)
    /// kernel — `Int::div_exact` and [`crate::ExactDivisor`] above their
    /// crossovers. Disjoint from `newton_divs`, which counts the
    /// reciprocal `div_rem` kernel.
    pub exact_divs: u64,
    /// Total Hensel lifting steps spent building or extending 2-adic
    /// inverses across those divisions (each is two truncated products).
    /// Stays far below `exact_divs` when [`crate::ExactDivisor`]
    /// amortization is effective.
    pub hensel_steps: u64,
}

/// What the parallel-multiplication (fork-join) path actually executed,
/// as opposed to what the paper cost model charged for it.
///
/// Kept separate from [`CostSnapshot`] for the same reason as
/// [`KroneckerStats`]: the model charge for every product is recorded at
/// the `Int` dispatch layer *before* the kernel runs, so it is identical
/// whether the kernel then executes serially or split across workers —
/// anything that varies with `RR_PAR_MUL` must live outside the model
/// counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParMulStats {
    /// Number of big-integer products (mul or sqr) that engaged the
    /// fork-join splitting layer at the top level.
    pub products: u64,
    /// Total fork-join subtasks published across those products (each
    /// Karatsuba split publishes its independent halves; limb-block
    /// tiling publishes one task per remote tile).
    pub tasks: u64,
    /// How many of those subtasks were actually executed by a worker
    /// other than the submitter (the rest were retracted and run
    /// inline). `steals / tasks` is the realized offload ratio.
    pub steals: u64,
    /// Sum over split products of the larger operand's bit length — the
    /// size distribution of work the splitter considered worth
    /// parallelizing.
    pub operand_bits: u64,
    /// Serial execution time of the split products, in nanoseconds: the
    /// sum of every fork-join closure's own wall-clock, measured on
    /// whichever worker executed it (Cilk-style *work*, `T₁`).
    pub work_ns: u64,
    /// Critical-path time of the split products, in nanoseconds: at each
    /// fork the longer half, summed along the deepest chain (Cilk-style
    /// *span*, `T_∞`). `work_ns / span_ns` is the available parallelism
    /// of the splits — what an unbounded pool could exploit.
    /// `parmul_ablation` Brent-bounds its simulated speedups from these
    /// two, the same measured-durations-replayed substitution that
    /// `speedups`/`speedup_report` use for the paper's 20-processor
    /// host (DESIGN.md §16).
    pub span_ns: u64,
}

/// Physical limb-buffer allocation totals for one phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAlloc {
    /// Limb-buffer acquisitions that hit the system allocator.
    pub allocs: u64,
    /// Bytes requested by those acquisitions.
    pub bytes: u64,
}

impl Add for PhaseAlloc {
    type Output = PhaseAlloc;
    fn add(self, rhs: PhaseAlloc) -> PhaseAlloc {
        PhaseAlloc {
            allocs: self.allocs + rhs.allocs,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for PhaseAlloc {
    fn add_assign(&mut self, rhs: PhaseAlloc) {
        *self = *self + rhs;
    }
}

/// What the scratch-arena layer physically allocated, per phase, as
/// opposed to what the paper cost model charged.
///
/// Kept separate from [`CostSnapshot`] on purpose: the model counters
/// are asserted bit-identical with arenas on and off (`RR_ARENA`), so a
/// counter whose whole point is to *vary* with the arena gate must live
/// outside them — the same separation as [`KroneckerStats`] and
/// [`NewtonDivStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    phases: [PhaseAlloc; NUM_PHASES],
}

impl AllocStats {
    /// Allocations recorded under `p`.
    pub fn phase(&self, p: Phase) -> PhaseAlloc {
        self.phases[p as usize]
    }

    /// Sum over all phases.
    pub fn total(&self) -> PhaseAlloc {
        self.phases
            .iter()
            .fold(PhaseAlloc::default(), |acc, &c| acc + c)
    }

    /// Iterator over `(phase, allocs)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseAlloc)> + '_ {
        ALL_PHASES.iter().map(move |&p| (p, self.phase(p)))
    }
}

/// A registry of per-thread event counters that can be aggregated at any
/// time. The recording path is contention-free: each thread that records
/// into a sink owns its own counter block (only the owner writes; the
/// aggregator only reads), and blocks outlive their threads so snapshot
/// subtraction stays exact across thread churn.
///
/// Cloning a sink is cheap and yields a handle to the same registry.
#[derive(Clone)]
pub struct MetricsSink {
    inner: Arc<SinkInner>,
}

struct SinkInner {
    id: u64,
    threads: Mutex<Vec<Arc<ThreadCounters>>>,
}

impl Default for MetricsSink {
    fn default() -> MetricsSink {
        MetricsSink::new()
    }
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink").field("id", &self.inner.id).finish()
    }
}

impl MetricsSink {
    /// A fresh, empty sink.
    pub fn new() -> MetricsSink {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        MetricsSink {
            inner: Arc::new(SinkInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Process-unique identity of this sink's registry (stable across
    /// clones of the same sink).
    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Registers a new per-thread counter block with this sink. The
    /// caller (the session machinery) caches the block per thread so the
    /// recording path never takes this lock.
    pub(crate) fn register_thread(&self) -> Arc<ThreadCounters> {
        let c = Arc::new(ThreadCounters::default());
        self.inner.threads.lock().push(Arc::clone(&c));
        c
    }

    /// Aggregates the counters of every thread that has recorded into
    /// this sink. Monotone: the cost of a region is the difference of the
    /// snapshots taken after and before it.
    pub fn snapshot(&self) -> CostSnapshot {
        let mut out = CostSnapshot::default();
        for c in self.inner.threads.lock().iter() {
            for i in 0..NUM_PHASES {
                out.phases[i] += PhaseCost {
                    mul_count: c.mul_count[i].load(Ordering::Relaxed),
                    mul_bits: c.mul_bits[i].load(Ordering::Relaxed),
                    div_count: c.div_count[i].load(Ordering::Relaxed),
                    div_bits: c.div_bits[i].load(Ordering::Relaxed),
                };
            }
        }
        out
    }

    /// Aggregates the Kronecker execution counters of every thread that
    /// has recorded into this sink.
    pub fn kron_snapshot(&self) -> KroneckerStats {
        let mut out = KroneckerStats::default();
        for c in self.inner.threads.lock().iter() {
            out.kronecker_muls += c.kron_muls.load(Ordering::Relaxed);
            out.packed_bits += c.kron_packed_bits.load(Ordering::Relaxed);
        }
        out
    }

    /// Aggregates the Newton-division execution counters of every thread
    /// that has recorded into this sink.
    pub fn newton_div_snapshot(&self) -> NewtonDivStats {
        let mut out = NewtonDivStats::default();
        for c in self.inner.threads.lock().iter() {
            out.newton_divs += c.newton_divs.load(Ordering::Relaxed);
            out.recip_iters += c.newton_recip_iters.load(Ordering::Relaxed);
            out.corrections += c.newton_corrections.load(Ordering::Relaxed);
            out.exact_divs += c.newton_exact_divs.load(Ordering::Relaxed);
            out.hensel_steps += c.newton_hensel_steps.load(Ordering::Relaxed);
        }
        out
    }

    /// Aggregates the parallel-multiplication execution counters of
    /// every thread that has recorded into this sink.
    pub fn parmul_snapshot(&self) -> ParMulStats {
        let mut out = ParMulStats::default();
        for c in self.inner.threads.lock().iter() {
            out.products += c.parmul_products.load(Ordering::Relaxed);
            out.tasks += c.parmul_tasks.load(Ordering::Relaxed);
            out.steals += c.parmul_steals.load(Ordering::Relaxed);
            out.operand_bits += c.parmul_operand_bits.load(Ordering::Relaxed);
            out.work_ns += c.parmul_work_ns.load(Ordering::Relaxed);
            out.span_ns += c.parmul_span_ns.load(Ordering::Relaxed);
        }
        out
    }

    /// Aggregates the physical allocation counters of every thread that
    /// has recorded into this sink.
    pub fn alloc_snapshot(&self) -> AllocStats {
        let mut out = AllocStats::default();
        for c in self.inner.threads.lock().iter() {
            for i in 0..NUM_PHASES {
                out.phases[i] += PhaseAlloc {
                    allocs: c.alloc_count[i].load(Ordering::Relaxed),
                    bytes: c.alloc_bytes[i].load(Ordering::Relaxed),
                };
            }
        }
        out
    }
}

/// The process-global default sink — the compatibility layer that
/// receives every event recorded with no [`crate::SolveCtx`] installed.
pub(crate) fn default_sink() -> &'static MetricsSink {
    static DEFAULT: OnceLock<MetricsSink> = OnceLock::new();
    DEFAULT.get_or_init(MetricsSink::new)
}

thread_local! {
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(Phase::Other as usize) };
    /// This thread's counter block in the default sink (the no-session
    /// fast path, resolved once per thread).
    static LOCAL: Arc<ThreadCounters> = default_sink().register_thread();
}

/// Always-on `rr_obs::metrics` series fed by this module, alongside the
/// per-session cost sinks: per-phase duration histograms recorded by
/// [`with_phase`], and operand-bit-size histograms recorded at the
/// `Int` dispatch layer ([`record_mul`] / [`record_div`]) — the
/// work-per-precision-level distribution view. These observe only; the
/// cost model ([`CostSnapshot`]) never reads them.
///
/// The operand-bit histograms are **sampled 1-in-[`SAMPLE`]** per
/// thread: `Int` dispatch runs at tens of millions of events per
/// second, where even a ~2 ns shard update is a double-digit-percent
/// tax, while a deterministic 1/64 stride leaves the bit-length
/// *distribution* statistically intact (`count` is the number of
/// samples taken, not of dispatches — the exact totals live in
/// [`CostSnapshot`]). Everything else records unsampled.
mod obs_metrics {
    use super::{ALL_PHASES, NUM_PHASES};
    use rr_obs::metrics::{histogram_with, Counter, Histogram};
    use std::cell::Cell;
    use std::sync::LazyLock;

    /// Sampling stride of the operand-bit histograms.
    pub(super) const SAMPLE: u32 = 64;

    thread_local! {
        static SAMPLE_TICK: Cell<u32> = const { Cell::new(0) };
    }

    /// Deterministic per-thread 1-in-[`SAMPLE`] gate; the first event of
    /// every thread is sampled so short-lived threads still show up.
    #[inline]
    pub(super) fn sampled() -> bool {
        SAMPLE_TICK.with(|t| {
            let c = t.get();
            if c == 0 {
                t.set(SAMPLE - 1);
                true
            } else {
                t.set(c - 1);
                false
            }
        })
    }

    pub(super) static PHASE_NS: LazyLock<[Histogram; NUM_PHASES]> = LazyLock::new(|| {
        ALL_PHASES.map(|p| {
            histogram_with(
                "rr_phase_duration_ns",
                "Wall-clock time inside with_phase regions, per phase (ns)",
                &[("phase", p.label())],
            )
        })
    });
    pub(super) static MUL_BITS: LazyLock<Histogram> = rr_obs::register_metric!(
        histogram,
        "rr_mp_operand_bits",
        "Largest operand bit length per Int arithmetic dispatch (sampled 1:64 per thread)",
        "op" => "mul"
    );
    pub(super) static DIV_BITS: LazyLock<Histogram> = rr_obs::register_metric!(
        histogram,
        "rr_mp_operand_bits",
        "Largest operand bit length per Int arithmetic dispatch (sampled 1:64 per thread)",
        "op" => "div"
    );
    pub(super) static PARMUL_TASKS: LazyLock<Counter> = rr_obs::register_metric!(
        counter,
        "rr_parmul_tasks_total",
        "Fork-join subtasks published by the parallel multiplication splitter"
    );
    pub(super) static PARMUL_BITS: LazyLock<Histogram> = rr_obs::register_metric!(
        histogram,
        "rr_parmul_operand_bits",
        "Larger operand bit length per fork-join-split big-integer product"
    );
}

/// Sets the calling thread's current phase, returning the previous one.
pub fn set_phase(p: Phase) -> Phase {
    CURRENT_PHASE.with(|c| {
        let prev = c.replace(p as usize);
        ALL_PHASES[prev]
    })
}

/// Returns the calling thread's current phase.
pub fn current_phase() -> Phase {
    CURRENT_PHASE.with(|c| ALL_PHASES[c.get()])
}

/// Runs `f` with the current phase set to `p`, restoring the previous
/// phase afterwards (also on unwind).
///
/// If the thread is inside a traced solve (an `rr-obs` recorder is
/// installed, via [`crate::SolveCtx::with_recorder`]), the region is
/// also recorded as a wall-clock phase span, so per-phase times line up
/// with per-phase operation counts. With no recorder installed the span
/// call is a single branch.
pub fn with_phase<R>(p: Phase, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Phase,
        cur: Phase,
        start: Option<std::time::Instant>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            set_phase(self.prev);
            // Feed the always-on per-phase latency distribution (also
            // on unwind, so panicking regions still count).
            if let Some(t0) = self.start {
                obs_metrics::PHASE_NS[self.cur as usize].record_duration(t0.elapsed());
            }
        }
    }
    let _span = rr_obs::phase_span(p.label());
    let _restore = Restore {
        prev: set_phase(p),
        cur: p,
        start: rr_obs::metrics::enabled().then(std::time::Instant::now),
    };
    f()
}

/// Records one multiplication of operands with the given bit lengths.
/// Called from `Int`'s arithmetic; not usually called directly.
///
/// The event goes to the installed session sink if the thread is inside
/// a [`crate::SolveCtx`] scope, and to the process-global default sink
/// otherwise.
#[inline]
pub fn record_mul(a_bits: u64, b_bits: u64) {
    if obs_metrics::sampled() {
        obs_metrics::MUL_BITS.record(a_bits.max(b_bits));
    }
    let phase = CURRENT_PHASE.with(Cell::get);
    if crate::session::record_session_mul(phase, a_bits, b_bits) {
        return;
    }
    LOCAL.with(|c| c.record_mul(phase, a_bits, b_bits));
}

/// Records one division; the bit cost model is `(‖a‖ − ‖b‖ + 1)·‖b‖`
/// (quotient length times divisor length, the Algorithm D work estimate).
#[inline]
pub fn record_div(a_bits: u64, b_bits: u64) {
    if obs_metrics::sampled() {
        obs_metrics::DIV_BITS.record(a_bits.max(b_bits));
    }
    let phase = CURRENT_PHASE.with(Cell::get);
    let q_bits = a_bits.saturating_sub(b_bits) + 1;
    if crate::session::record_session_div(phase, q_bits, b_bits) {
        return;
    }
    LOCAL.with(|c| c.record_div(phase, q_bits, b_bits));
}

/// Records `count` multiplications totalling `bits` of model bit cost in
/// one pair of counter updates — for callers that replay a *batch* of
/// model events whose aggregate charge has a closed form. The schoolbook
/// polynomial product is the motivating case: its model charge over the
/// nonzero coefficient pairs factorizes as
/// `Σᵢ Σⱼ ‖aᵢ‖·‖bⱼ‖ = (Σᵢ ‖aᵢ‖)·(Σⱼ ‖bⱼ‖)`, so the Kronecker path can
/// record the exact same totals as the per-pair loop in linear time.
#[inline]
pub fn record_mul_bulk(count: u64, bits: u64) {
    let phase = CURRENT_PHASE.with(Cell::get);
    if crate::session::record_session_mul_bulk(phase, count, bits) {
        return;
    }
    LOCAL.with(|c| c.record_mul_bulk(phase, count, bits));
}

/// Records one executed Kronecker polynomial product that packed
/// `packed_bits` bits in total. Called from `rr-poly`'s Kronecker path;
/// not usually called directly. Routes to the installed session sink if
/// any, else to the process-global default sink.
#[inline]
pub fn record_kron(packed_bits: u64) {
    if crate::session::record_session_kron(packed_bits) {
        return;
    }
    LOCAL.with(|c| c.record_kron(packed_bits));
}

/// Records one division executed through the Newton reciprocal path:
/// its refinement iteration count and quotient correction steps. Called
/// from `nat::newton_div`; not usually called directly. Routes to the
/// installed session sink if any, else to the process-global default
/// sink.
#[inline]
pub fn record_newton_div(recip_iters: u64, corrections: u64) {
    if crate::session::record_session_newton_div(recip_iters, corrections) {
        return;
    }
    LOCAL.with(|c| c.record_newton_div(recip_iters, corrections));
}

/// Records one exact division executed through the 2-adic (Hensel)
/// kernel and the number of inverse-lifting steps it spent. Called from
/// `nat::newton_div::div_exact` and [`crate::ExactDivisor`]; not usually
/// called directly. Routes to the installed session sink if any, else to
/// the process-global default sink.
#[inline]
pub fn record_newton_exact_div(hensel_steps: u64) {
    if crate::session::record_session_newton_exact_div(hensel_steps) {
        return;
    }
    LOCAL.with(|c| c.record_newton_exact_div(hensel_steps));
}

/// Records one big-integer product split by the fork-join layer:
/// `tasks` subtasks published, of which `steals` were executed by other
/// workers, on a product whose larger operand was `operand_bits` bits
/// and whose fork-join tree measured `work_ns` of serial execution over
/// a `span_ns` critical path. Called from `nat::parmul`; not usually
/// called directly. Routes to the installed session sink if any, else
/// to the process-global default sink, and feeds the always-on registry
/// series `rr_parmul_tasks_total` / `rr_parmul_operand_bits`.
#[inline]
pub fn record_parmul(tasks: u64, steals: u64, operand_bits: u64, work_ns: u64, span_ns: u64) {
    obs_metrics::PARMUL_TASKS.add(tasks);
    obs_metrics::PARMUL_BITS.record(operand_bits);
    if crate::session::record_session_parmul(tasks, steals, operand_bits, work_ns, span_ns) {
        return;
    }
    LOCAL.with(|c| c.record_parmul(tasks, steals, operand_bits, work_ns, span_ns));
}

/// Records one limb-buffer allocation of `bytes` bytes that reached the
/// system allocator, under the calling thread's current phase. Called
/// from the scratch layer ([`crate::scratch`]); not usually called
/// directly.
///
/// Besides the per-phase session/global accounting, every event also
/// bumps the thread-local [`rr_obs::alloc`] counters, which the pool
/// reads around each task to attribute allocation churn to scopes.
#[inline]
pub fn record_alloc(bytes: u64) {
    rr_obs::alloc::record(bytes);
    let phase = CURRENT_PHASE.with(Cell::get);
    if crate::session::record_session_alloc(phase, bytes) {
        return;
    }
    LOCAL.with(|c| c.record_alloc(phase, bytes));
}

/// Aggregates the physical allocation counters of the process-global
/// default sink (events recorded with no [`crate::SolveCtx`] installed).
pub fn alloc_snapshot() -> AllocStats {
    default_sink().alloc_snapshot()
}

/// Aggregates the Kronecker execution counters of the process-global
/// default sink (events recorded with no [`crate::SolveCtx`] installed).
pub fn kron_snapshot() -> KroneckerStats {
    default_sink().kron_snapshot()
}

/// Aggregates the Newton-division execution counters of the
/// process-global default sink (events recorded with no
/// [`crate::SolveCtx`] installed).
pub fn newton_div_snapshot() -> NewtonDivStats {
    default_sink().newton_div_snapshot()
}

/// Aggregates the parallel-multiplication execution counters of the
/// process-global default sink (events recorded with no
/// [`crate::SolveCtx`] installed).
pub fn parmul_snapshot() -> ParMulStats {
    default_sink().parmul_snapshot()
}

/// Cost totals for one phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCost {
    /// Number of multiprecision multiplications.
    pub mul_count: u64,
    /// Sum over multiplications of `‖a‖·‖b‖` (bit complexity).
    pub mul_bits: u64,
    /// Number of multiprecision divisions.
    pub div_count: u64,
    /// Sum over divisions of the Algorithm D work estimate.
    pub div_bits: u64,
}

impl Sub for PhaseCost {
    type Output = PhaseCost;
    fn sub(self, rhs: PhaseCost) -> PhaseCost {
        PhaseCost {
            mul_count: self.mul_count - rhs.mul_count,
            mul_bits: self.mul_bits - rhs.mul_bits,
            div_count: self.div_count - rhs.div_count,
            div_bits: self.div_bits - rhs.div_bits,
        }
    }
}

impl Add for PhaseCost {
    type Output = PhaseCost;
    fn add(self, rhs: PhaseCost) -> PhaseCost {
        PhaseCost {
            mul_count: self.mul_count + rhs.mul_count,
            mul_bits: self.mul_bits + rhs.mul_bits,
            div_count: self.div_count + rhs.div_count,
            div_bits: self.div_bits + rhs.div_bits,
        }
    }
}

impl AddAssign for PhaseCost {
    fn add_assign(&mut self, rhs: PhaseCost) {
        *self = *self + rhs;
    }
}

/// A point-in-time aggregation of one sink's counters.
///
/// Snapshots are monotone, so the cost of a region of code is the
/// difference of the snapshots taken after and before it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostSnapshot {
    phases: [PhaseCost; NUM_PHASES],
}

impl CostSnapshot {
    /// Cost recorded under `p`.
    pub fn phase(&self, p: Phase) -> PhaseCost {
        self.phases[p as usize]
    }

    /// Sum over all phases.
    pub fn total(&self) -> PhaseCost {
        self.phases
            .iter()
            .fold(PhaseCost::default(), |acc, &c| acc + c)
    }

    /// Iterator over `(phase, cost)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseCost)> + '_ {
        ALL_PHASES.iter().map(move |&p| (p, self.phase(p)))
    }
}

impl Sub for CostSnapshot {
    type Output = CostSnapshot;
    fn sub(self, rhs: CostSnapshot) -> CostSnapshot {
        let mut out = CostSnapshot::default();
        for i in 0..NUM_PHASES {
            out.phases[i] = self.phases[i] - rhs.phases[i];
        }
        out
    }
}

impl Add for CostSnapshot {
    type Output = CostSnapshot;
    fn add(self, rhs: CostSnapshot) -> CostSnapshot {
        let mut out = CostSnapshot::default();
        for i in 0..NUM_PHASES {
            out.phases[i] = self.phases[i] + rhs.phases[i];
        }
        out
    }
}

impl AddAssign for CostSnapshot {
    fn add_assign(&mut self, rhs: CostSnapshot) {
        *self = *self + rhs;
    }
}

/// Aggregates the process-global default sink: every event recorded by
/// any thread that was *not* inside a [`crate::SolveCtx`] scope.
///
/// Session-scoped events are invisible here by design — read them from
/// the owning [`crate::SolveCtx`] instead.
pub fn snapshot() -> CostSnapshot {
    default_sink().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Int;

    #[test]
    fn with_phase_restores_previous() {
        set_phase(Phase::Other);
        with_phase(Phase::Sieve, || {
            assert_eq!(current_phase(), Phase::Sieve);
            with_phase(Phase::Newton, || {
                assert_eq!(current_phase(), Phase::Newton);
            });
            assert_eq!(current_phase(), Phase::Sieve);
        });
        assert_eq!(current_phase(), Phase::Other);
    }

    #[test]
    fn with_phase_restores_on_panic() {
        set_phase(Phase::Other);
        let r = std::panic::catch_unwind(|| {
            with_phase(Phase::Bisection, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(current_phase(), Phase::Other);
    }

    #[test]
    fn snapshot_diff_counts_region() {
        let a = Int::from(u64::MAX) * Int::from(u64::MAX); // warm TLS
        drop(a);
        let before = snapshot();
        with_phase(Phase::TreePoly, || {
            let x = Int::from(12345u64);
            let y = Int::from(99999u64);
            let _ = &x * &y;
            let _ = &x * &y;
        });
        let d = snapshot() - before;
        assert_eq!(d.phase(Phase::TreePoly).mul_count, 2);
        // bit cost of 12345 (14 bits) * 99999 (17 bits), twice
        assert_eq!(d.phase(Phase::TreePoly).mul_bits, 2 * 14 * 17);
    }

    #[test]
    fn divisions_recorded_separately() {
        let before = snapshot();
        with_phase(Phase::Baseline, || {
            let x = Int::from(1_000_000_007u64);
            let y = Int::from(97u64);
            let _ = &x / &y;
        });
        let d = snapshot() - before;
        assert_eq!(d.phase(Phase::Baseline).div_count, 1);
        assert_eq!(d.phase(Phase::Baseline).mul_count, 0);
    }

    #[test]
    fn cross_thread_aggregation() {
        let before = snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    with_phase(Phase::PreInterval, || {
                        let _ = Int::from(7u64) * Int::from(9u64);
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let d = snapshot() - before;
        assert_eq!(d.phase(Phase::PreInterval).mul_count, 4);
    }

    #[test]
    fn total_sums_phases() {
        let before = snapshot();
        with_phase(Phase::Sort, || {
            let _ = Int::from(3u64) * Int::from(5u64);
        });
        with_phase(Phase::Sieve, || {
            let _ = Int::from(3u64) * Int::from(5u64);
        });
        let d = snapshot() - before;
        assert_eq!(d.total().mul_count, 2);
    }

    #[test]
    fn fresh_sink_is_isolated_from_global() {
        let sink = MetricsSink::new();
        let before_global = snapshot();
        with_phase(Phase::Sort, || {
            let _ = Int::from(3u64) * Int::from(5u64);
        });
        // The raw (no-session) event went to the global sink only.
        assert_eq!(sink.snapshot().total().mul_count, 0);
        assert_eq!((snapshot() - before_global).phase(Phase::Sort).mul_count, 1);
    }

    #[test]
    fn cost_snapshot_add_is_inverse_of_sub() {
        let before = snapshot();
        with_phase(Phase::Newton, || {
            let _ = Int::from(17u64) * Int::from(19u64);
        });
        let after = snapshot();
        assert_eq!(before + (after - before), after);
    }
}
