//! Parsing and formatting of [`Int`] in decimal and hexadecimal.

use crate::limb::Limb;
use crate::nat;
use crate::{Int, Sign};
use std::fmt;
use std::str::FromStr;

/// Largest power of ten fitting in a limb, used for chunked conversion.
const DEC_CHUNK: Limb = 10_000_000_000_000_000_000; // 10^19
const DEC_CHUNK_DIGITS: usize = 19;

/// Error parsing an [`Int`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
    UnsupportedRadix(u32),
}

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            ParseErrorKind::UnsupportedRadix(r) => write!(f, "unsupported radix {r}"),
        }
    }
}

impl std::error::Error for ParseIntError {}

impl Int {
    /// Parses an integer from `s` in the given radix (2, 10, or 16), with
    /// an optional leading `+`/`-` and optional `_` digit separators.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Int, ParseIntError> {
        if !matches!(radix, 2 | 10 | 16) {
            return Err(ParseIntError { kind: ParseErrorKind::UnsupportedRadix(radix) });
        }
        let (sign, digits) = match s.as_bytes() {
            [b'-', rest @ ..] => (Sign::Negative, rest),
            [b'+', rest @ ..] => (Sign::Positive, rest),
            rest => (Sign::Positive, rest),
        };
        let mut any = false;
        let mut mag: Vec<Limb> = Vec::new();
        // Multiply-accumulate chunk by chunk; avoid per-digit bignum work.
        let chunk_digits = match radix {
            10 => DEC_CHUNK_DIGITS,
            16 => 16,
            _ => 63,
        };
        let chunk_base: Limb = match radix {
            10 => DEC_CHUNK,
            // For powers of two the chunk base is applied via shifts below;
            // these values are only used in the generic multiply path.
            16 => 0,
            _ => 0,
        };
        let mut pending: Limb = 0;
        let mut pending_digits = 0usize;
        let flush = |mag: &mut Vec<Limb>, pending: Limb, nd: usize| {
            if nd == 0 {
                return;
            }
            match radix {
                10 => {
                    let base = if nd == chunk_digits {
                        chunk_base
                    } else {
                        (10 as Limb).pow(nd as u32)
                    };
                    *mag = nat::mul::mul_limb(mag, base);
                    *mag = nat::add(mag, &[pending]);
                }
                16 => {
                    *mag = nat::shl(mag, (nd * 4) as u64);
                    *mag = nat::add(mag, &[pending]);
                }
                2 => {
                    *mag = nat::shl(mag, nd as u64);
                    *mag = nat::add(mag, &[pending]);
                }
                _ => unreachable!(),
            }
        };
        for &b in digits {
            if b == b'_' {
                continue;
            }
            let d = (b as char)
                .to_digit(radix)
                .ok_or(ParseIntError { kind: ParseErrorKind::InvalidDigit(b as char) })?;
            any = true;
            pending = pending * radix as Limb + d as Limb;
            pending_digits += 1;
            if pending_digits == chunk_digits {
                flush(&mut mag, pending, pending_digits);
                pending = 0;
                pending_digits = 0;
            }
        }
        if !any {
            return Err(ParseIntError { kind: ParseErrorKind::Empty });
        }
        flush(&mut mag, pending, pending_digits);
        Ok(Int::from_sign_mag(sign, mag))
    }
}

impl FromStr for Int {
    type Err = ParseIntError;
    fn from_str(s: &str) -> Result<Int, ParseIntError> {
        Int::from_str_radix(s, 10)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel 19 decimal digits per division by 10^19.
        let mut chunks: Vec<Limb> = Vec::new();
        let mut mag = self.magnitude().to_vec();
        while !nat::is_zero(&mag) {
            let (q, r) = nat::div::div_rem_limb(&mag, DEC_CHUNK);
            chunks.push(r);
            mag = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(!self.is_negative(), "", &s)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::LowerHex for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mag = self.magnitude();
        let mut s = format!("{:x}", mag.last().unwrap());
        for l in mag.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(!self.is_negative(), "0x", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_small() {
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!(Int::from(7u32).to_string(), "7");
        assert_eq!(Int::from(-7i32).to_string(), "-7");
        assert_eq!(Int::from(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Int::from(i128::MIN).to_string(), i128::MIN.to_string());
    }

    #[test]
    fn display_multi_chunk_padding() {
        // A value whose low decimal chunk has leading zeros.
        let x = Int::pow2(64); // 18446744073709551616
        assert_eq!(x.to_string(), "18446744073709551616");
        let y = Int::from(10u64).pow(25); // crosses chunk boundary with zeros
        assert_eq!(y.to_string(), format!("1{}", "0".repeat(25)));
    }

    #[test]
    fn parse_roundtrip_decimal() {
        for s in [
            "0",
            "1",
            "-1",
            "123456789012345678901234567890",
            "-999999999999999999999999999999999999999",
        ] {
            assert_eq!(s.parse::<Int>().unwrap().to_string(), s);
        }
    }

    #[test]
    fn parse_accepts_separators_and_plus() {
        assert_eq!("+1_000_000".parse::<Int>().unwrap(), Int::from(1_000_000u32));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!(Int::from_str_radix("123", 7).is_err());
    }

    #[test]
    fn hex_and_binary() {
        assert_eq!(Int::from_str_radix("ff", 16).unwrap(), Int::from(255u32));
        assert_eq!(Int::from_str_radix("-ff", 16).unwrap(), Int::from(-255i32));
        assert_eq!(Int::from_str_radix("1010", 2).unwrap(), Int::from(10u32));
        let big = Int::from_str_radix("123456789abcdef0123456789abcdef", 16).unwrap();
        assert_eq!(format!("{big:x}"), "123456789abcdef0123456789abcdef");
        assert_eq!(format!("{big:#x}"), "0x123456789abcdef0123456789abcdef");
        assert_eq!(format!("{:x}", Int::zero()), "0");
        assert_eq!(format!("{:x}", Int::from(-16i32)), "-10");
        assert_eq!(format!("{:#x}", Int::from(-16i32)), "-0x10");
    }

    #[test]
    fn parse_display_roundtrip_large_random_like() {
        let mut x = Int::one();
        for k in 1..40u32 {
            x = x * Int::from(1_000_003u64) + Int::from(k);
            let s = x.to_string();
            assert_eq!(s.parse::<Int>().unwrap(), x);
            let h = format!("{x:x}");
            assert_eq!(Int::from_str_radix(&h, 16).unwrap(), x);
        }
    }
}
