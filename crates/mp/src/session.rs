//! Session contexts: per-solve backend selection and metrics ownership.
//!
//! A [`SolveCtx`] bundles the two pieces of runtime context that used to
//! be process-global mutable state:
//!
//! * the multiplication **backend** ([`crate::MulBackend`]) to dispatch
//!   [`crate::Int`] kernels to, and
//! * a private **metrics sink** ([`crate::metrics::MetricsSink`]) that
//!   receives every arithmetic event performed under the context.
//!
//! A context is *installed* on a thread for a scope
//! ([`SolveCtx::install`] / [`SolveCtx::run`]); while installed, all
//! `Int` arithmetic on that thread dispatches to the context's backend
//! and records into the context's sink. Worker threads executing tasks
//! on behalf of a solve install the solve's context around each task, so
//! the context follows the *work*, not the thread — two solves can
//! interleave tasks on the same worker without cross-attributing a
//! single event.
//!
//! Installation is scoped and stack-shaped: contexts nest, the innermost
//! wins, and the guard restores the previous state on drop (including
//! unwind). A thread with no context installed falls back to the
//! process-global compatibility layer: the [`crate::mul_backend`] atomic
//! (seeded from `RR_MUL_BACKEND`) and the default metrics sink read by
//! [`crate::metrics::snapshot`].
//!
//! The recording path stays contention-free: the first install of a
//! given context on a thread registers one per-thread counter block with
//! the context's sink and caches it in thread-local storage, so steady
//! state recording is two thread-local reads and a relaxed atomic add —
//! identical in shape to the pre-session path.
//!
//! ```
//! use rr_mp::{metrics::Phase, Int, MulBackend, SolveCtx};
//!
//! let fast = SolveCtx::new(MulBackend::Fast);
//! let school = SolveCtx::new(MulBackend::Schoolbook);
//! let product = fast.run(|| Int::from(3u64) * Int::from(5u64));
//! school.run(|| {
//!     let _ = Int::from(7u64) * Int::from(9u64);
//! });
//! assert_eq!(product, Int::from(15u64));
//! // Each context saw exactly its own event.
//! assert_eq!(fast.snapshot().total().mul_count, 1);
//! assert_eq!(school.snapshot().total().mul_count, 1);
//! ```

use crate::backend::{DivBackend, MulBackend, ParMulMode, PolyMulBackend};
use crate::metrics::{CostSnapshot, MetricsSink, ThreadCounters};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, Weak};

/// Per-solve context: a multiplication backend plus a private metrics
/// sink, and optionally an `rr-obs` span recorder for traced solves and
/// a cancel token for supervised solves. Cheap to clone (all clones
/// share the sink); `Send + Sync`, so a solve can hand clones to its
/// worker tasks.
#[derive(Clone, Debug)]
pub struct SolveCtx {
    backend: MulBackend,
    poly_backend: PolyMulBackend,
    div_backend: DivBackend,
    arena: bool,
    par_mul: ParMulMode,
    sink: MetricsSink,
    recorder: Option<rr_obs::Recorder>,
    cancel: Option<rr_sched::CancelToken>,
}

/// One installed context on a thread's ambient stack, with the
/// per-(sink, thread) counter block resolved once at install time.
struct ActiveCtx {
    backend: MulBackend,
    poly_backend: PolyMulBackend,
    div_backend: DivBackend,
    arena: bool,
    par_mul: ParMulMode,
    counters: Arc<ThreadCounters>,
}

thread_local! {
    /// Stack of installed contexts; the innermost (last) one receives
    /// this thread's arithmetic events.
    static AMBIENT: RefCell<Vec<ActiveCtx>> = const { RefCell::new(Vec::new()) };
    /// Cache of this thread's counter block per sink id, so re-installing
    /// the same context never re-locks the sink registry.
    static COUNTER_CACHE: RefCell<Vec<(u64, Weak<ThreadCounters>)>> = const { RefCell::new(Vec::new()) };
}

impl SolveCtx {
    /// A fresh context with the given backend and an empty private sink.
    pub fn new(backend: MulBackend) -> SolveCtx {
        SolveCtx {
            backend,
            poly_backend: PolyMulBackend::Schoolbook,
            div_backend: DivBackend::Schoolbook,
            arena: crate::backend::arena_enabled(),
            par_mul: crate::backend::par_mul_mode(),
            sink: MetricsSink::new(),
            recorder: None,
            cancel: None,
        }
    }

    /// A fresh context on the process-default backends
    /// ([`crate::mul_backend`] / [`crate::poly_mul_backend`] /
    /// [`crate::div_backend`], i.e. `RR_MUL_BACKEND` + `RR_POLY_MUL` +
    /// `RR_DIV` or schoolbook).
    pub fn with_default_backend() -> SolveCtx {
        SolveCtx::new(crate::backend::mul_backend())
            .with_poly_backend(crate::backend::poly_mul_backend())
            .with_div_backend(crate::backend::div_backend())
    }

    /// Selects the polynomial multiplication backend this context
    /// dispatches `Poly × Poly` to (default: schoolbook).
    pub fn with_poly_backend(mut self, poly_backend: PolyMulBackend) -> SolveCtx {
        self.poly_backend = poly_backend;
        self
    }

    /// The polynomial multiplication backend carried by this context.
    pub fn poly_backend(&self) -> PolyMulBackend {
        self.poly_backend
    }

    /// Selects the division backend this context dispatches `Int`
    /// divisions to (default: schoolbook).
    pub fn with_div_backend(mut self, div_backend: DivBackend) -> SolveCtx {
        self.div_backend = div_backend;
        self
    }

    /// The division backend carried by this context.
    pub fn div_backend(&self) -> DivBackend {
        self.div_backend
    }

    /// Selects whether the scratch arena ([`crate::scratch`]) reuses
    /// limb buffers while this context is installed (default: the
    /// process gate [`crate::arena_enabled`], seeded from `RR_ARENA`).
    /// Like the backends, the innermost installed context wins, so two
    /// concurrent solves can run with different arena settings.
    pub fn with_arena(mut self, arena: bool) -> SolveCtx {
        self.arena = arena;
        self
    }

    /// Whether this context runs with the scratch arena enabled.
    pub fn arena(&self) -> bool {
        self.arena
    }

    /// Selects whether large magnitude products fork-join onto the
    /// solve's pool scope while this context is installed (default: the
    /// process mode [`crate::par_mul_mode`], seeded from `RR_PAR_MUL`).
    /// Like the backends, the innermost installed context wins, so
    /// concurrent solves can run with different split policies.
    pub fn with_par_mul(mut self, par_mul: ParMulMode) -> SolveCtx {
        self.par_mul = par_mul;
        self
    }

    /// The parallel-multiplication mode carried by this context.
    pub fn par_mul(&self) -> ParMulMode {
        self.par_mul
    }

    /// Attaches a span recorder: while this context is installed, the
    /// recorder is installed too (so `metrics::with_phase` sites emit
    /// wall-clock phase spans alongside their operation counts), and it
    /// follows the context onto worker threads.
    pub fn with_recorder(mut self, recorder: rr_obs::Recorder) -> SolveCtx {
        self.recorder = Some(recorder);
        self
    }

    /// The span recorder attached to this context, if any.
    pub fn recorder(&self) -> Option<&rr_obs::Recorder> {
        self.recorder.as_ref()
    }

    /// Attaches a cooperative cancel token: the solve layers carry it
    /// from the session entry point (deadline/budget supervision) down
    /// to the pool scope and the phase-boundary checks. The token rides
    /// on the context so every layer that already receives a `SolveCtx`
    /// can observe cancellation without new plumbing.
    pub fn with_cancel(mut self, token: rr_sched::CancelToken) -> SolveCtx {
        self.cancel = Some(token);
        self
    }

    /// The cancel token attached to this context, if any.
    pub fn cancel_token(&self) -> Option<&rr_sched::CancelToken> {
        self.cancel.as_ref()
    }

    /// The backend this context dispatches `Int` kernels to.
    pub fn backend(&self) -> MulBackend {
        self.backend
    }

    /// Aggregates every event recorded under this context, on any
    /// thread, since its creation. The sink starts empty, so no
    /// before/after subtraction is needed: this *is* the context's cost.
    pub fn snapshot(&self) -> CostSnapshot {
        self.sink.snapshot()
    }

    /// Kronecker execution counters recorded under this context — what
    /// the Kronecker polynomial path actually ran, which the model
    /// counters in [`SolveCtx::snapshot`] deliberately do not reflect.
    pub fn kron_stats(&self) -> crate::metrics::KroneckerStats {
        self.sink.kron_snapshot()
    }

    /// Newton-division execution counters recorded under this context —
    /// what the Newton division path actually ran, which the
    /// backend-invariant cost model in [`SolveCtx::snapshot`]
    /// deliberately does not reflect.
    pub fn newton_div_stats(&self) -> crate::metrics::NewtonDivStats {
        self.sink.newton_div_snapshot()
    }

    /// Parallel-multiplication execution counters recorded under this
    /// context — what the fork-join splitter actually ran, which the
    /// `RR_PAR_MUL`-invariant cost model in [`SolveCtx::snapshot`]
    /// deliberately does not reflect.
    pub fn parmul_stats(&self) -> crate::metrics::ParMulStats {
        self.sink.parmul_snapshot()
    }

    /// Physical allocation counters recorded under this context — how
    /// many limb-buffer acquisitions reached the system allocator, per
    /// phase. Varies with the arena setting by design, which is exactly
    /// why it lives outside the backend-invariant cost model of
    /// [`SolveCtx::snapshot`].
    pub fn alloc_stats(&self) -> crate::metrics::AllocStats {
        self.sink.alloc_snapshot()
    }

    /// This thread's counter block in the context's sink, from the
    /// thread-local cache when possible.
    fn thread_counters(&self) -> Arc<ThreadCounters> {
        let id = self.sink.id();
        COUNTER_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            // Drop cache entries whose sink died (its Arc'd counters are
            // kept alive only by the sink registry).
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            if let Some((_, weak)) = cache.iter().find(|(cached, _)| *cached == id) {
                if let Some(c) = weak.upgrade() {
                    return c;
                }
            }
            let c = self.sink.register_thread();
            cache.push((id, Arc::downgrade(&c)));
            c
        })
    }

    /// Installs this context on the calling thread until the returned
    /// guard drops. Nested installs stack; the innermost wins. A
    /// recorder attached via [`SolveCtx::with_recorder`] is installed
    /// for the same extent.
    ///
    /// The guard is not `Send`: it must drop on the thread that created
    /// it (context installation is per-thread state).
    pub fn install(&self) -> CtxGuard {
        let obs = self.recorder.as_ref().map(rr_obs::Recorder::install);
        let active = ActiveCtx {
            backend: self.backend,
            poly_backend: self.poly_backend,
            div_backend: self.div_backend,
            arena: self.arena,
            par_mul: self.par_mul,
            counters: self.thread_counters(),
        };
        AMBIENT.with(|stack| stack.borrow_mut().push(active));
        CtxGuard {
            _obs: obs,
            _not_send: PhantomData,
        }
    }

    /// Runs `f` with this context installed, restoring the previous
    /// ambient state afterwards (also on unwind).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.install();
        f()
    }
}

/// Uninstalls the innermost context when dropped. Returned by
/// [`SolveCtx::install`].
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct CtxGuard {
    // Uninstalls the attached recorder after the context pops (struct
    // fields drop after the `Drop::drop` body runs).
    _obs: Option<rr_obs::InstallGuard>,
    // Raw-pointer marker makes the guard !Send + !Sync: it manipulates
    // the installing thread's ambient stack and must drop there.
    _not_send: PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The backend of the innermost installed context, if any. Kernel
/// dispatch (`nat::mul_auto`) consults this before the process-global
/// atomic.
#[inline]
pub(crate) fn current_backend() -> Option<MulBackend> {
    AMBIENT.with(|stack| stack.borrow().last().map(|a| a.backend))
}

/// The division backend of the innermost installed context, if any.
/// Kernel dispatch (`nat::div_rem_auto`) consults this before the
/// process-global atomic.
#[inline]
pub(crate) fn current_div_backend() -> Option<DivBackend> {
    AMBIENT.with(|stack| stack.borrow().last().map(|a| a.div_backend))
}

/// True if the calling thread currently has a context installed.
pub fn has_current() -> bool {
    AMBIENT.with(|stack| !stack.borrow().is_empty())
}

/// Whether the scratch arena should reuse buffers on the calling thread:
/// the innermost installed context's choice, else the process gate
/// [`crate::backend::arena_enabled`] (seeded from `RR_ARENA`). This is
/// the single point [`crate::scratch`] consults.
#[inline]
pub(crate) fn arena_active() -> bool {
    AMBIENT.with(|stack| stack.borrow().last().map(|a| a.arena))
        .unwrap_or_else(crate::backend::arena_enabled)
}

/// The parallel-multiplication mode active on the calling thread: the
/// innermost installed context's choice, else the process-global
/// [`crate::par_mul_mode`] (seeded from `RR_PAR_MUL`). This is the
/// single point the magnitude dispatch ([`crate::nat::parmul`])
/// consults.
#[inline]
pub(crate) fn par_mul_active() -> ParMulMode {
    AMBIENT.with(|stack| stack.borrow().last().map(|a| a.par_mul))
        .unwrap_or_else(crate::backend::par_mul_mode)
}

/// The polynomial multiplication backend the calling thread should
/// dispatch `Poly × Poly` to: the innermost installed context's choice,
/// else the process-global [`crate::poly_mul_backend`] (seeded from
/// `RR_POLY_MUL`). This is the single dispatch point `rr-poly` consults.
#[inline]
pub fn active_poly_mul_backend() -> PolyMulBackend {
    AMBIENT.with(|stack| stack.borrow().last().map(|a| a.poly_backend))
        .unwrap_or_else(crate::backend::poly_mul_backend)
}

/// Records a multiplication into the innermost installed context's sink.
/// Returns false (and records nothing) if no context is installed.
#[inline]
pub(crate) fn record_session_mul(phase: usize, a_bits: u64, b_bits: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_mul(phase, a_bits, b_bits);
            true
        }
        None => false,
    })
}

/// Records a division into the innermost installed context's sink.
/// Returns false (and records nothing) if no context is installed.
#[inline]
pub(crate) fn record_session_div(phase: usize, q_bits: u64, b_bits: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_div(phase, q_bits, b_bits);
            true
        }
        None => false,
    })
}

/// Bulk variant of [`record_session_mul`]: `count` multiplications
/// totalling `bits` of model cost in one update. Returns false (and
/// records nothing) if no context is installed.
#[inline]
pub(crate) fn record_session_mul_bulk(phase: usize, count: u64, bits: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_mul_bulk(phase, count, bits);
            true
        }
        None => false,
    })
}

/// Records one executed Kronecker-substitution polynomial product (and
/// the total bits packed for it) into the innermost installed context's
/// sink. Returns false (and records nothing) if no context is installed.
///
/// These counters live *outside* the paper cost model
/// ([`crate::metrics::CostSnapshot`]): they describe what actually ran,
/// not what the model charges.
#[inline]
pub(crate) fn record_session_kron(packed_bits: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_kron(packed_bits);
            true
        }
        None => false,
    })
}

/// Records one executed Newton-path division (its reciprocal iterations
/// and correction steps) into the innermost installed context's sink.
/// Returns false (and records nothing) if no context is installed.
///
/// Like the Kronecker counters, these live *outside* the paper cost
/// model: they describe what actually ran, not what the model charges.
#[inline]
pub(crate) fn record_session_newton_div(recip_iters: u64, corrections: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_newton_div(recip_iters, corrections);
            true
        }
        None => false,
    })
}

/// Records one executed 2-adic exact division (and its Hensel lifting
/// steps) into the innermost installed context's sink. Returns false
/// (and records nothing) if no context is installed.
#[inline]
pub(crate) fn record_session_newton_exact_div(hensel_steps: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_newton_exact_div(hensel_steps);
            true
        }
        None => false,
    })
}

/// Records one fork-join split of a magnitude product — how many halves
/// were published, how many of those a thief actually executed, and the
/// operand size in bits — into the innermost installed context's sink.
/// Returns false (and records nothing) if no context is installed.
///
/// Like the Kronecker and Newton counters, these live *outside* the
/// paper cost model: they describe what actually ran, not what the
/// model charges.
#[inline]
pub(crate) fn record_session_parmul(
    tasks: u64,
    steals: u64,
    operand_bits: u64,
    work_ns: u64,
    span_ns: u64,
) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_parmul(tasks, steals, operand_bits, work_ns, span_ns);
            true
        }
        None => false,
    })
}

/// Records one physical limb-buffer allocation into the innermost
/// installed context's sink. Returns false (and records nothing) if no
/// context is installed.
///
/// Like the Kronecker and Newton counters, these live *outside* the
/// paper cost model: they describe what actually ran, not what the
/// model charges — and unlike those, they intentionally vary with the
/// arena gate.
#[inline]
pub(crate) fn record_session_alloc(phase: usize, bytes: u64) -> bool {
    AMBIENT.with(|stack| match stack.borrow().last() {
        Some(active) => {
            active.counters.record_alloc(phase, bytes);
            true
        }
        None => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{self, Phase};
    use crate::Int;

    #[test]
    fn session_events_do_not_reach_global_sink() {
        let before = metrics::snapshot();
        let ctx = SolveCtx::new(MulBackend::Schoolbook);
        ctx.run(|| {
            metrics::with_phase(Phase::TreePoly, || {
                let _ = Int::from(12345u64) * Int::from(99999u64);
            })
        });
        let global = metrics::snapshot() - before;
        assert_eq!(global.phase(Phase::TreePoly).mul_count, 0);
        assert_eq!(ctx.snapshot().phase(Phase::TreePoly).mul_count, 1);
        assert_eq!(ctx.snapshot().phase(Phase::TreePoly).mul_bits, 14 * 17);
    }

    #[test]
    fn nested_contexts_innermost_wins_and_restores() {
        let outer = SolveCtx::new(MulBackend::Schoolbook);
        let inner = SolveCtx::new(MulBackend::Fast);
        outer.run(|| {
            let _ = Int::from(3u64) * Int::from(5u64);
            inner.run(|| {
                let _ = Int::from(3u64) * Int::from(5u64);
                let _ = Int::from(3u64) * Int::from(5u64);
            });
            let _ = Int::from(3u64) * Int::from(5u64);
        });
        assert_eq!(outer.snapshot().total().mul_count, 2);
        assert_eq!(inner.snapshot().total().mul_count, 2);
        assert!(!has_current());
    }

    #[test]
    fn guard_restores_on_unwind() {
        let ctx = SolveCtx::new(MulBackend::Schoolbook);
        let r = std::panic::catch_unwind(|| {
            ctx.run(|| panic!("boom"));
        });
        assert!(r.is_err());
        assert!(!has_current());
    }

    #[test]
    fn context_aggregates_across_threads() {
        let ctx = SolveCtx::new(MulBackend::Fast);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ctx = ctx.clone();
                std::thread::spawn(move || {
                    ctx.run(|| {
                        metrics::with_phase(Phase::Sieve, || {
                            let _ = Int::from(7u64) * Int::from(9u64);
                        })
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ctx.snapshot().phase(Phase::Sieve).mul_count, 4);
    }

    #[test]
    fn reinstall_on_same_thread_uses_one_counter_block() {
        // Repeated install/uninstall must not grow the sink registry per
        // install: the per-thread block is cached. (Observable effect:
        // totals still exact; this exercises the cache path.)
        let ctx = SolveCtx::new(MulBackend::Schoolbook);
        for _ in 0..100 {
            ctx.run(|| {
                let _ = Int::from(3u64) * Int::from(5u64);
            });
        }
        assert_eq!(ctx.snapshot().total().mul_count, 100);
    }

    #[test]
    fn attached_recorder_is_installed_with_the_context() {
        let rec = rr_obs::Recorder::new();
        let traced = SolveCtx::new(MulBackend::Schoolbook).with_recorder(rec.clone());
        let plain = SolveCtx::new(MulBackend::Schoolbook);
        traced.run(|| {
            assert!(rr_obs::active());
            metrics::with_phase(Phase::Newton, || {
                let _ = Int::from(17u64) * Int::from(19u64);
            });
        });
        assert!(!rr_obs::active());
        plain.run(|| {
            assert!(!rr_obs::active());
            metrics::with_phase(Phase::Newton, || {
                let _ = Int::from(17u64) * Int::from(19u64);
            });
        });
        // Only the traced context produced a span, and both contexts
        // counted their own multiplication: spans and counts agree.
        let trace = rec.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "newton");
        assert_eq!(trace.spans[0].cat, "phase");
        assert_eq!(traced.snapshot().phase(Phase::Newton).mul_count, 1);
        assert_eq!(plain.snapshot().phase(Phase::Newton).mul_count, 1);
    }

    #[test]
    fn recorder_follows_context_across_threads() {
        let rec = rr_obs::Recorder::new();
        let ctx = SolveCtx::new(MulBackend::Fast).with_recorder(rec.clone());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let ctx = ctx.clone();
                std::thread::spawn(move || {
                    ctx.run(|| {
                        metrics::with_phase(Phase::Sieve, || {
                            let _ = Int::from(7u64) * Int::from(9u64);
                        })
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = rec.finish();
        assert_eq!(trace.spans.len(), 3);
        assert!(trace.spans.iter().all(|s| s.name == "sieve"));
        // One track per recording thread.
        let tids: std::collections::HashSet<u32> = trace.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 3);
        assert_eq!(ctx.snapshot().phase(Phase::Sieve).mul_count, 3);
    }

    #[test]
    fn ambient_backend_overrides_global() {
        let prev = crate::backend::set_mul_backend(MulBackend::Schoolbook);
        let ctx = SolveCtx::new(MulBackend::Fast);
        ctx.run(|| {
            assert_eq!(current_backend(), Some(MulBackend::Fast));
        });
        assert_eq!(current_backend(), None);
        crate::backend::set_mul_backend(prev);
    }
}
