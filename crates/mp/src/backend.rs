//! Process-wide selection of the magnitude multiplication kernel — the
//! **compatibility layer** behind the session API.
//!
//! **Deprecated in favor of [`crate::SolveCtx`]:** process-global
//! selection is inherently racy under concurrent solves (two solves
//! swapping the atomic corrupt each other's choice). New code should
//! carry the backend in a [`crate::SolveCtx`], which kernel dispatch
//! consults *first*; this module remains the fallback for threads with
//! no context installed, so single-solve CLI use (`RR_MUL_BACKEND=fast
//! cargo run --release --bin ...`) keeps working unchanged.
//!
//! Two kernels compute exactly the same products (the differential suite
//! in `tests/kernel_diff.rs` holds them bit-for-bit equal):
//!
//! * [`MulBackend::Schoolbook`] — the classical quadratic routine in
//!   [`crate::nat::mul`]. This is the default: the paper's Section 4
//!   analysis models the UNIX `mp` package, whose multiplication is
//!   quadratic, so wall-clock *time* measurements reported alongside
//!   the paper's (Table 2, Figure 8) should use it.
//! * [`MulBackend::Fast`] — Karatsuba ([`crate::nat::kmul`]) above a
//!   calibrated limb threshold, falling through to schoolbook below it.
//!   Opt-in for production-scale runs where raw speed matters.
//!
//! Switching backends never changes what the [`crate::metrics`] module
//! records: every `Int` multiplication is one event costed at
//! `‖a‖·‖b‖` *before* the kernel runs, and the kernels recurse on raw
//! limb slices without touching the metrics. Predicted-vs-observed
//! figures (2–7, Table 1) are therefore invariant under the switch.
//!
//! The selection is a process-wide atomic, initialized lazily from the
//! `RR_MUL_BACKEND` environment variable (`schoolbook` or `fast`;
//! unset/unknown means schoolbook) and overridable at runtime with
//! [`set_mul_backend`]. It applies only when no [`crate::SolveCtx`] is
//! installed on the current thread — an installed context's backend
//! always wins.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel [`crate::nat::mul_auto`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MulBackend {
    /// Classical quadratic multiplication — paper-faithful timing.
    #[default]
    Schoolbook,
    /// Karatsuba above [`crate::nat::kmul::KARATSUBA_THRESHOLD`] limbs.
    Fast,
}

const SCHOOLBOOK: u8 = 0;
const FAST: u8 = 1;
const UNINIT: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(UNINIT);

/// The currently selected backend.
///
/// First call reads `RR_MUL_BACKEND` from the environment; later calls
/// return the cached (or explicitly [set](set_mul_backend)) value.
#[inline]
pub fn mul_backend() -> MulBackend {
    match BACKEND.load(Ordering::Relaxed) {
        SCHOOLBOOK => MulBackend::Schoolbook,
        FAST => MulBackend::Fast,
        _ => init_from_env(),
    }
}

/// Selects the backend for the whole process, returning the previous
/// selection.
///
/// **Deprecated:** prefer carrying the backend in a [`crate::SolveCtx`]
/// — a process-wide swap is racy under concurrent solves. Kept for
/// single-solve CLI use; it has no effect on threads that have a
/// context installed.
pub fn set_mul_backend(backend: MulBackend) -> MulBackend {
    let raw = match backend {
        MulBackend::Schoolbook => SCHOOLBOOK,
        MulBackend::Fast => FAST,
    };
    match BACKEND.swap(raw, Ordering::Relaxed) {
        FAST => MulBackend::Fast,
        // An UNINIT previous value reports the default.
        _ => MulBackend::Schoolbook,
    }
}

#[cold]
fn init_from_env() -> MulBackend {
    let choice = match std::env::var("RR_MUL_BACKEND").as_deref() {
        Ok("fast") => MulBackend::Fast,
        _ => MulBackend::Schoolbook,
    };
    // A racing set_mul_backend wins: only replace UNINIT.
    let raw = match choice {
        MulBackend::Schoolbook => SCHOOLBOOK,
        MulBackend::Fast => FAST,
    };
    match BACKEND.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => choice,
        Err(FAST) => MulBackend::Fast,
        Err(_) => MulBackend::Schoolbook,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_read_round_trip() {
        // Single test touching the global so ordering within this
        // process stays deterministic.
        let original = mul_backend();
        set_mul_backend(MulBackend::Fast);
        assert_eq!(mul_backend(), MulBackend::Fast);
        let prev = set_mul_backend(MulBackend::Schoolbook);
        assert_eq!(prev, MulBackend::Fast);
        assert_eq!(mul_backend(), MulBackend::Schoolbook);
        set_mul_backend(original);
    }
}
