//! Process-wide selection of the magnitude multiplication kernel — the
//! **compatibility layer** behind the session API.
//!
//! **Deprecated in favor of [`crate::SolveCtx`]:** process-global
//! selection is inherently racy under concurrent solves (two solves
//! swapping the atomic corrupt each other's choice). New code should
//! carry the backend in a [`crate::SolveCtx`], which kernel dispatch
//! consults *first*; this module remains the fallback for threads with
//! no context installed, so single-solve CLI use (`RR_MUL_BACKEND=fast
//! cargo run --release --bin ...`) keeps working unchanged.
//!
//! Two kernels compute exactly the same products (the differential suite
//! in `tests/kernel_diff.rs` holds them bit-for-bit equal):
//!
//! * [`MulBackend::Schoolbook`] — the classical quadratic routine in
//!   [`crate::nat::mul`]. This is the default: the paper's Section 4
//!   analysis models the UNIX `mp` package, whose multiplication is
//!   quadratic, so wall-clock *time* measurements reported alongside
//!   the paper's (Table 2, Figure 8) should use it.
//! * [`MulBackend::Fast`] — Karatsuba ([`crate::nat::kmul`]) above a
//!   calibrated limb threshold, falling through to schoolbook below it.
//!   Opt-in for production-scale runs where raw speed matters.
//!
//! Switching backends never changes what the [`crate::metrics`] module
//! records: every `Int` multiplication is one event costed at
//! `‖a‖·‖b‖` *before* the kernel runs, and the kernels recurse on raw
//! limb slices without touching the metrics. Predicted-vs-observed
//! figures (2–7, Table 1) are therefore invariant under the switch.
//!
//! The selection is a process-wide atomic, initialized lazily from the
//! `RR_MUL_BACKEND` environment variable (`schoolbook` or `fast`;
//! unset/unknown means schoolbook) and overridable at runtime with
//! [`set_mul_backend`]. It applies only when no [`crate::SolveCtx`] is
//! installed on the current thread — an installed context's backend
//! always wins.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel [`crate::nat::mul_auto`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MulBackend {
    /// Classical quadratic multiplication — paper-faithful timing.
    #[default]
    Schoolbook,
    /// Karatsuba above [`crate::nat::kmul::KARATSUBA_THRESHOLD`] limbs.
    Fast,
}

const SCHOOLBOOK: u8 = 0;
const FAST: u8 = 1;
const UNINIT: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(UNINIT);

/// The currently selected backend.
///
/// First call reads `RR_MUL_BACKEND` from the environment; later calls
/// return the cached (or explicitly [set](set_mul_backend)) value.
#[inline]
pub fn mul_backend() -> MulBackend {
    match BACKEND.load(Ordering::Relaxed) {
        SCHOOLBOOK => MulBackend::Schoolbook,
        FAST => MulBackend::Fast,
        _ => init_from_env(),
    }
}

/// Selects the backend for the whole process, returning the previous
/// selection.
///
/// **Deprecated:** prefer carrying the backend in a [`crate::SolveCtx`]
/// — a process-wide swap is racy under concurrent solves. Kept for
/// single-solve CLI use; it has no effect on threads that have a
/// context installed.
pub fn set_mul_backend(backend: MulBackend) -> MulBackend {
    let raw = match backend {
        MulBackend::Schoolbook => SCHOOLBOOK,
        MulBackend::Fast => FAST,
    };
    match BACKEND.swap(raw, Ordering::Relaxed) {
        FAST => MulBackend::Fast,
        // An UNINIT previous value reports the default.
        _ => MulBackend::Schoolbook,
    }
}

/// Which algorithm `rr-poly`'s `Poly × Poly` dispatches to.
///
/// Lives here (rather than in `rr-poly`) so the selection can ride on a
/// [`crate::SolveCtx`] next to [`MulBackend`]: a solve carries *both*
/// kernel choices, and worker tasks inherit them together.
///
/// * [`PolyMulBackend::Schoolbook`] — the classical
///   `(d_a+1)(d_b+1)`-coefficient-product double loop, matching the
///   paper's Section 4.2 count exactly.
/// * [`PolyMulBackend::Kronecker`] — Kronecker substitution: pack each
///   polynomial into one big integer (fixed-width slots), multiply once
///   with the active [`MulBackend`] kernel, unpack. Exact for any signed
///   integer polynomials, and subquadratic end-to-end when combined with
///   the `Fast` limb kernel. Falls back to schoolbook below a calibrated
///   size crossover.
///
/// Switching never changes what [`crate::metrics`] records: the
/// Kronecker path replays the schoolbook *model* events (one recorded
/// multiplication per pair of nonzero coefficients, costed at
/// `‖x‖·‖y‖`), so predicted-vs-observed figures stay bit-identical and
/// backend-invariant. What actually ran is visible separately through
/// the Kronecker counters ([`crate::metrics::KroneckerStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolyMulBackend {
    /// Classical coefficient double loop — paper-faithful timing.
    #[default]
    Schoolbook,
    /// Kronecker substitution onto one big-integer multiplication.
    Kronecker,
}

static POLY_BACKEND: AtomicU8 = AtomicU8::new(UNINIT);

/// The currently selected process-wide polynomial multiplication
/// backend.
///
/// First call reads `RR_POLY_MUL` from the environment (`schoolbook` or
/// `kronecker`; unset/unknown means schoolbook); later calls return the
/// cached (or explicitly [set](set_poly_mul_backend)) value. Applies
/// only when no [`crate::SolveCtx`] is installed on the current thread.
#[inline]
pub fn poly_mul_backend() -> PolyMulBackend {
    match POLY_BACKEND.load(Ordering::Relaxed) {
        SCHOOLBOOK => PolyMulBackend::Schoolbook,
        FAST => PolyMulBackend::Kronecker,
        _ => init_poly_from_env(),
    }
}

/// Selects the process-wide polynomial multiplication backend, returning
/// the previous selection. Same caveats as [`set_mul_backend`]: prefer
/// carrying the choice in a [`crate::SolveCtx`]; this is the no-session
/// fallback.
pub fn set_poly_mul_backend(backend: PolyMulBackend) -> PolyMulBackend {
    let raw = match backend {
        PolyMulBackend::Schoolbook => SCHOOLBOOK,
        PolyMulBackend::Kronecker => FAST,
    };
    match POLY_BACKEND.swap(raw, Ordering::Relaxed) {
        FAST => PolyMulBackend::Kronecker,
        _ => PolyMulBackend::Schoolbook,
    }
}

/// Which kernel [`crate::nat::div_rem_auto`] dispatches to.
///
/// Two kernels compute exactly the same `(quotient, remainder)` pairs
/// (the differential suite in `tests/div_diff.rs` holds them
/// bit-for-bit equal):
///
/// * [`DivBackend::Schoolbook`] — Knuth's Algorithm D
///   ([`crate::nat::div`]), quadratic in the operand sizes, matching the
///   `mp` package the paper timed.
/// * [`DivBackend::Newton`] — reciprocal by quadratic Newton iteration
///   ([`crate::nat::newton_div`]) above a calibrated size crossover,
///   falling through to Algorithm D below it. Every refinement step is
///   a multiplication through [`crate::nat::mul_auto`], so the division
///   inherits whatever multiplication kernel is active (pair with
///   [`MulBackend::Fast`] for the subquadratic end-to-end path).
///
/// Switching never changes what [`crate::metrics`] records: every
/// `Int` division is costed with the Algorithm D work estimate
/// `(‖a‖−‖b‖+1)·‖b‖` *before* the kernel runs, so
/// predicted-vs-observed figures stay bit-identical across `RR_DIV`.
/// What physically ran is visible separately through
/// [`crate::metrics::NewtonDivStats`] and the `"div"` span an installed
/// `rr-obs` recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DivBackend {
    /// Knuth Algorithm D — paper-faithful timing.
    #[default]
    Schoolbook,
    /// Newton-iteration reciprocal above
    /// [`crate::nat::newton_div::NEWTON_DIV_THRESHOLD`] limbs.
    Newton,
}

static DIV_BACKEND: AtomicU8 = AtomicU8::new(UNINIT);

/// The currently selected process-wide division backend.
///
/// First call reads `RR_DIV` from the environment (`schoolbook` or
/// `newton`; unset/unknown means schoolbook); later calls return the
/// cached (or explicitly [set](set_div_backend)) value. Applies only
/// when no [`crate::SolveCtx`] is installed on the current thread.
#[inline]
pub fn div_backend() -> DivBackend {
    match DIV_BACKEND.load(Ordering::Relaxed) {
        SCHOOLBOOK => DivBackend::Schoolbook,
        FAST => DivBackend::Newton,
        _ => init_div_from_env(),
    }
}

/// Selects the process-wide division backend, returning the previous
/// selection. Same caveats as [`set_mul_backend`]: prefer carrying the
/// choice in a [`crate::SolveCtx`]; this is the no-session fallback.
pub fn set_div_backend(backend: DivBackend) -> DivBackend {
    let raw = match backend {
        DivBackend::Schoolbook => SCHOOLBOOK,
        DivBackend::Newton => FAST,
    };
    match DIV_BACKEND.swap(raw, Ordering::Relaxed) {
        FAST => DivBackend::Newton,
        _ => DivBackend::Schoolbook,
    }
}

static ARENA: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether the scratch-arena buffer-reuse layer ([`crate::scratch`]) is
/// enabled process-wide.
///
/// First call reads `RR_ARENA` from the environment (`on`/`off`; unset
/// or unknown means **on** — buffer reuse never changes results, only
/// allocation traffic); later calls return the cached (or explicitly
/// [set](set_arena_enabled)) value. Applies only when no
/// [`crate::SolveCtx`] is installed on the current thread — an installed
/// context's [`crate::SolveCtx::with_arena`] choice always wins.
///
/// Arenas change no recorded metrics and no results: with the gate off,
/// every scratch acquisition falls through to a fresh allocation (and is
/// counted as one), which is what makes the arena's allocation savings a
/// measured on/off difference instead of an assumption.
#[inline]
pub fn arena_enabled() -> bool {
    match ARENA.load(Ordering::Relaxed) {
        SCHOOLBOOK => false,
        FAST => true,
        _ => init_arena_from_env(),
    }
}

/// Enables or disables the scratch arena process-wide, returning the
/// previous setting. Same caveats as [`set_mul_backend`]: prefer
/// carrying the choice in a [`crate::SolveCtx`]; this is the no-session
/// fallback.
pub fn set_arena_enabled(enabled: bool) -> bool {
    let raw = if enabled { FAST } else { SCHOOLBOOK };
    ARENA.swap(raw, Ordering::Relaxed) != SCHOOLBOOK
}

/// Whether large magnitude products fork-join onto the solve's pool
/// scope ([`crate::nat::parmul`]).
///
/// * [`ParMulMode::Off`] — every product runs serially on the calling
///   thread (the pre-PR-10 behaviour).
/// * [`ParMulMode::On`] — products above
///   [`crate::nat::parmul::PAR_MUL_THRESHOLD`] limbs split whenever a
///   pool scope is reachable from the calling thread (outside one, the
///   split degrades to inline serial execution — results never depend
///   on where the caller runs).
/// * [`ParMulMode::Auto`] (default) — like `On`, but also requires the
///   scope to report idle capacity ([`rr_sched::current_parallelism`]
///   above 1): a queue already deep enough to keep every worker busy
///   gains nothing from splitting single products and would only pay
///   the publication overhead.
///
/// Switching never changes results or what [`crate::metrics`] records:
/// the parallel kernels compute bit-identical limbs in the same combine
/// order as the serial ones (held by `tests/parmul_diff.rs`), and every
/// `Int` op is costed *before* its kernel runs. Physical split activity
/// is visible separately through [`crate::metrics::ParMulStats`] and the
/// `"parmul"` spans an installed `rr-obs` recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParMulMode {
    /// Never split: serial kernels only.
    Off,
    /// Split every product above the limb threshold.
    On,
    /// Split above the threshold only when the scope has idle capacity.
    #[default]
    Auto,
}

/// `ParMulMode::Auto`'s storage value (0/1 are Off/On, 2 is UNINIT).
const PM_AUTO: u8 = 3;

static PAR_MUL: AtomicU8 = AtomicU8::new(UNINIT);

/// The currently selected process-wide parallel-multiplication mode.
///
/// First call reads `RR_PAR_MUL` from the environment (`off`, `on` or
/// `auto`; unset/unknown means `auto`); later calls return the cached
/// (or explicitly [set](set_par_mul_mode)) value. Applies only when no
/// [`crate::SolveCtx`] is installed on the current thread — an installed
/// context's [`crate::SolveCtx::with_par_mul`] choice always wins.
#[inline]
pub fn par_mul_mode() -> ParMulMode {
    match PAR_MUL.load(Ordering::Relaxed) {
        SCHOOLBOOK => ParMulMode::Off,
        FAST => ParMulMode::On,
        PM_AUTO => ParMulMode::Auto,
        _ => init_par_mul_from_env(),
    }
}

/// Selects the process-wide parallel-multiplication mode, returning the
/// previous selection. Same caveats as [`set_mul_backend`]: prefer
/// carrying the choice in a [`crate::SolveCtx`]; this is the no-session
/// fallback.
pub fn set_par_mul_mode(mode: ParMulMode) -> ParMulMode {
    let raw = match mode {
        ParMulMode::Off => SCHOOLBOOK,
        ParMulMode::On => FAST,
        ParMulMode::Auto => PM_AUTO,
    };
    match PAR_MUL.swap(raw, Ordering::Relaxed) {
        SCHOOLBOOK => ParMulMode::Off,
        FAST => ParMulMode::On,
        _ => ParMulMode::Auto,
    }
}

#[cold]
fn init_par_mul_from_env() -> ParMulMode {
    let choice = match std::env::var("RR_PAR_MUL").as_deref() {
        Ok("off") | Ok("0") => ParMulMode::Off,
        Ok("on") | Ok("1") => ParMulMode::On,
        _ => ParMulMode::Auto,
    };
    let raw = match choice {
        ParMulMode::Off => SCHOOLBOOK,
        ParMulMode::On => FAST,
        ParMulMode::Auto => PM_AUTO,
    };
    // A racing set_par_mul_mode wins: only replace UNINIT.
    match PAR_MUL.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => choice,
        Err(SCHOOLBOOK) => ParMulMode::Off,
        Err(FAST) => ParMulMode::On,
        Err(_) => ParMulMode::Auto,
    }
}

#[cold]
fn init_arena_from_env() -> bool {
    let choice = !matches!(std::env::var("RR_ARENA").as_deref(), Ok("off") | Ok("0"));
    let raw = if choice { FAST } else { SCHOOLBOOK };
    // A racing set_arena_enabled wins: only replace UNINIT.
    match ARENA.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => choice,
        Err(prev) => prev != SCHOOLBOOK,
    }
}

#[cold]
fn init_div_from_env() -> DivBackend {
    let choice = match std::env::var("RR_DIV").as_deref() {
        Ok("newton") => DivBackend::Newton,
        _ => DivBackend::Schoolbook,
    };
    let raw = match choice {
        DivBackend::Schoolbook => SCHOOLBOOK,
        DivBackend::Newton => FAST,
    };
    // A racing set_div_backend wins: only replace UNINIT.
    match DIV_BACKEND.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => choice,
        Err(FAST) => DivBackend::Newton,
        Err(_) => DivBackend::Schoolbook,
    }
}

#[cold]
fn init_poly_from_env() -> PolyMulBackend {
    let choice = match std::env::var("RR_POLY_MUL").as_deref() {
        Ok("kronecker") => PolyMulBackend::Kronecker,
        _ => PolyMulBackend::Schoolbook,
    };
    let raw = match choice {
        PolyMulBackend::Schoolbook => SCHOOLBOOK,
        PolyMulBackend::Kronecker => FAST,
    };
    // A racing set_poly_mul_backend wins: only replace UNINIT.
    match POLY_BACKEND.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => choice,
        Err(FAST) => PolyMulBackend::Kronecker,
        Err(_) => PolyMulBackend::Schoolbook,
    }
}

#[cold]
fn init_from_env() -> MulBackend {
    let choice = match std::env::var("RR_MUL_BACKEND").as_deref() {
        Ok("fast") => MulBackend::Fast,
        _ => MulBackend::Schoolbook,
    };
    // A racing set_mul_backend wins: only replace UNINIT.
    let raw = match choice {
        MulBackend::Schoolbook => SCHOOLBOOK,
        MulBackend::Fast => FAST,
    };
    match BACKEND.compare_exchange(UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => choice,
        Err(FAST) => MulBackend::Fast,
        Err(_) => MulBackend::Schoolbook,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_read_round_trip() {
        // Single test touching the global so ordering within this
        // process stays deterministic.
        let original = mul_backend();
        set_mul_backend(MulBackend::Fast);
        assert_eq!(mul_backend(), MulBackend::Fast);
        let prev = set_mul_backend(MulBackend::Schoolbook);
        assert_eq!(prev, MulBackend::Fast);
        assert_eq!(mul_backend(), MulBackend::Schoolbook);
        set_mul_backend(original);
    }
}
