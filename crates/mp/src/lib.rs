//! # rr-mp — instrumented multiprecision integer arithmetic
//!
//! A from-scratch arbitrary-precision signed integer library reproducing the
//! cost model of the UNIX `mp` package used by Narendran & Tiwari (1991):
//!
//! * addition and subtraction run in time linear in the operand sizes;
//! * multiplication is **schoolbook** — quadratic in the operand sizes;
//! * division is Knuth's Algorithm D — quadratic in the operand sizes.
//!
//! No subquadratic kernels (Karatsuba, FFT) are provided on purpose: the
//! paper's entire Section 4 analysis, and its Figures 2–7, assume the
//! quadratic model, and the benchmark harness in this workspace compares
//! *predicted* against *observed* multiplication counts and bit costs.
//!
//! Every [`Int`] multiplication and division is therefore recorded by the
//! [`metrics`] module under the currently active [`metrics::Phase`], with
//! both an operation count and a bit cost `‖a‖·‖b‖` (the product of the
//! operand bit lengths — the paper's unit of bit complexity).
//!
//! ## Example
//!
//! ```
//! use rr_mp::Int;
//!
//! let a = Int::from(-1234567890123456789i64);
//! let b = Int::from_str_radix("340282366920938463463374607431768211456", 10).unwrap();
//! let c = &a * &b;
//! assert_eq!((&c / &a), b);
//! assert_eq!((&c % &b), Int::zero());
//! assert_eq!(a.pow(3).to_string(),
//!     "-1881676372353657772490265749424677022198701224860897069");
//! ```

#![warn(missing_docs)]

pub mod gcd;
pub mod limb;
pub mod metrics;
pub mod nat;

mod fmt;
mod int;

pub use int::{Int, Sign};
