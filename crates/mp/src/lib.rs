//! # rr-mp — instrumented multiprecision integer arithmetic
//!
//! A from-scratch arbitrary-precision signed integer library reproducing the
//! cost model of the UNIX `mp` package used by Narendran & Tiwari (1991):
//!
//! * addition and subtraction run in time linear in the operand sizes;
//! * multiplication is **schoolbook** — quadratic — by default;
//! * division is Knuth's Algorithm D — quadratic in the operand sizes.
//!
//! Every [`Int`] multiplication and division is recorded by the
//! [`metrics`] module under the currently active [`metrics::Phase`], with
//! both an operation count and a bit cost `‖a‖·‖b‖` (the product of the
//! operand bit lengths — the paper's unit of bit complexity).
//!
//! ## Two multiplication kernels, one cost model
//!
//! The paper's Section 4 analysis, and its Figures 2–7, are stated in
//! multiplication *events* and operand *bit lengths* — exactly what the
//! [`metrics`] module records, and it records them at the [`Int`] level
//! **before** any kernel runs. The limb-level kernel is therefore
//! swappable without disturbing the reproduction: [`backend`] selects
//! between the paper-faithful schoolbook routine ([`nat::mul`], the
//! default, matching the quadratic `mp` package the paper timed) and an
//! opt-in Karatsuba kernel ([`nat::kmul`], `RR_MUL_BACKEND=fast`) for
//! production-scale runs. The two are held bit-for-bit equal by the
//! differential suite in `tests/kernel_diff.rs`; only wall-clock
//! *seconds* (Table 2, Figure 8) depend on the choice.
//!
//! Division is swappable the same way: the paper-faithful Algorithm D
//! kernel ([`nat::div`], the default) or, under `RR_DIV=newton`, the
//! kernels in [`nat::newton_div`] — Newton-iteration reciprocal
//! `div_rem` above a calibrated crossover, 2-adic (Hensel) exact
//! division whose cost is independent of the divisor's length, and,
//! through [`ExactDivisor`], cached per-divisor inverses plus a fused
//! dot-product division for the subresultant remainder step. The
//! division cost is charged at the `Int` layer before any kernel runs,
//! so the recorded model is invariant under the switch;
//! `tests/div_diff.rs` holds the kernels bit-for-bit equal.
//!
//! ## Sessions
//!
//! Backend selection and metrics attribution are carried per solve by a
//! [`SolveCtx`] (see the [`session`] module): while a context is
//! installed on a thread, its backend drives kernel dispatch and its
//! private sink receives every recorded event, so concurrent solves
//! with different backends neither corrupt each other's selection nor
//! cross-attribute counts. The process-global [`backend`] atomic and the
//! [`metrics::snapshot`] default sink remain as the compatibility layer
//! for code running outside any session.
//!
//! ## Example
//!
//! ```
//! use rr_mp::Int;
//!
//! let a = Int::from(-1234567890123456789i64);
//! let b = Int::from_str_radix("340282366920938463463374607431768211456", 10).unwrap();
//! let c = &a * &b;
//! assert_eq!((&c / &a), b);
//! assert_eq!((&c % &b), Int::zero());
//! assert_eq!(a.pow(3).to_string(),
//!     "-1881676372353657772490265749424677022198701224860897069");
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod gcd;
pub mod limb;
pub mod metrics;
pub mod nat;
pub mod scratch;
pub mod session;

mod divisor;
mod fmt;
mod int;

pub use backend::{
    arena_enabled, div_backend, mul_backend, par_mul_mode, poly_mul_backend, set_arena_enabled,
    set_div_backend, set_mul_backend, set_par_mul_mode, set_poly_mul_backend, DivBackend,
    MulBackend, ParMulMode, PolyMulBackend,
};
pub use divisor::ExactDivisor;
pub use int::{Int, Sign};
pub use metrics::{AllocStats, KroneckerStats, MetricsSink, NewtonDivStats, ParMulStats, PhaseAlloc};
pub use session::{active_poly_mul_backend, CtxGuard, SolveCtx};
