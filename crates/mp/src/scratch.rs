//! Per-thread scratch arenas: reusable limb buffers for the hot paths.
//!
//! The solve stack's inner loops — the subresultant remainder step, the
//! tree-stage matrix products, Karatsuba's split temporaries — create
//! short-lived `Vec<Limb>` buffers at every step. Each one is a system
//! allocator round trip, and profiles show the remainder phase is bound
//! by exactly that churn. This module gives every thread a small LIFO
//! free list of limb buffers; rewritten hot paths acquire their
//! temporaries with [`take`] and return them with [`put`], so in steady
//! state a worker reuses the same few buffers for the whole solve.
//!
//! ## One code path, measured on/off
//!
//! The arena is gated by `RR_ARENA` (default **on**; see
//! [`crate::backend::arena_enabled`]) and per solve by
//! [`crate::SolveCtx::with_arena`], but rewritten callers never branch
//! on the gate: they always call [`take`]/[`put`]. With the gate off,
//! [`take`] falls through to a fresh allocation and [`put`] drops the
//! buffer — so "off" measures the same code with reuse disabled, and
//! every acquisition that actually hit the allocator (all of them when
//! off, only cold misses when on) is counted via
//! [`crate::metrics::record_alloc`]. The allocation reduction reported
//! in `results/BENCH_arena.json` is the on/off difference of that
//! counter, not an estimate.
//!
//! ## Aliasing and hygiene contract
//!
//! A buffer returned by [`take`] has `len == 0` and at least the
//! requested capacity, but its *spare capacity is dirty*: it may hold
//! limbs from a previous use. Kernels writing into scratch must fully
//! initialize every limb they read back (the `_into` kernels do:
//! they `resize`/overwrite before reading) — the differential suite in
//! `crates/mp/tests/inplace_diff.rs` drives every kernel with
//! deliberately poisoned buffers to hold this. Buffers must go back via
//! [`put`] on the thread that took them (the free list is
//! thread-local); dropping one instead is safe but forfeits the reuse.
//!
//! Take/put pairs are stack-shaped in practice (each kernel returns
//! what it took before its caller resumes), which is what keeps the
//! LIFO list hot in cache; [`Scratch::outstanding`] exposes the balance
//! so tests can assert a scope returned everything it took.

use crate::limb::Limb;
use std::cell::RefCell;

/// Retained buffers beyond this count are dropped by [`Scratch::put`]:
/// deep recursions (Karatsuba) briefly take many buffers, but steady
/// state needs only a handful, and an unbounded list would pin the
/// high-water mark of every past solve.
const MAX_RETAINED: usize = 64;

/// Retained buffers larger than this (in limbs) are dropped rather than
/// kept: one huge outlier operand should not permanently occupy the
/// free list. 1 Mi limbs = 8 MiB.
const MAX_RETAINED_LIMBS: usize = 1 << 20;

/// A LIFO free list of reusable limb buffers. One lives per thread
/// (accessed through [`take`]/[`put`]); the type is public so tests and
/// single-threaded callers can run a private arena.
#[derive(Debug, Default)]
pub struct Scratch {
    bufs: Vec<Vec<Limb>>,
    outstanding: usize,
}

impl Scratch {
    /// An empty arena.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Acquires a buffer with `len == 0` and capacity ≥ `min_limbs`.
    ///
    /// Reuses the most recently [`put`](Scratch::put) buffer when the
    /// arena gate is on and one with enough capacity is available;
    /// otherwise allocates fresh and records the allocation
    /// ([`crate::metrics::record_alloc`]). The buffer's spare capacity
    /// is dirty — see the module docs for the hygiene contract.
    pub fn take(&mut self, min_limbs: usize) -> Vec<Limb> {
        self.outstanding += 1;
        if crate::session::arena_active() {
            // LIFO scan from the top: the most recent buffers are the
            // cache-hot ones, and sizes within one kernel repeat.
            for i in (0..self.bufs.len()).rev() {
                if self.bufs[i].capacity() >= min_limbs {
                    let mut v = self.bufs.swap_remove(i);
                    v.clear();
                    return v;
                }
            }
            // No fit: recycle the top buffer by growing it (one counted
            // allocation, but the list stays bounded).
            if let Some(mut v) = self.bufs.pop() {
                v.clear();
                v.reserve(min_limbs);
                crate::metrics::record_alloc((min_limbs * std::mem::size_of::<Limb>()) as u64);
                return v;
            }
        }
        crate::metrics::record_alloc((min_limbs * std::mem::size_of::<Limb>()) as u64);
        Vec::with_capacity(min_limbs)
    }

    /// Returns a buffer to the free list (or drops it when the arena
    /// gate is off, the list is full, or the buffer is outsized).
    pub fn put(&mut self, mut v: Vec<Limb>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if crate::session::arena_active()
            && self.bufs.len() < MAX_RETAINED
            && v.capacity() <= MAX_RETAINED_LIMBS
            && v.capacity() > 0
        {
            v.clear();
            self.bufs.push(v);
        }
    }

    /// Buffers currently taken but not yet returned. Balanced scopes
    /// leave this where they found it; the tests assert it.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Buffers currently held by the free list.
    pub fn retained(&self) -> usize {
        self.bufs.len()
    }

    /// Drops every retained buffer (the idle-worker release path).
    pub fn release(&mut self) {
        self.bufs.clear();
        self.bufs.shrink_to_fit();
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Acquires a buffer from the calling thread's arena — see
/// [`Scratch::take`]. The thread-local borrow is released before this
/// returns, so kernels are free to call back into arithmetic (and thus
/// into [`take`] again) while holding the buffer.
#[inline]
pub fn take(min_limbs: usize) -> Vec<Limb> {
    SCRATCH.with(|s| s.borrow_mut().take(min_limbs))
}

/// Returns a buffer to the calling thread's arena — see
/// [`Scratch::put`].
#[inline]
pub fn put(v: Vec<Limb>) {
    SCRATCH.with(|s| s.borrow_mut().put(v));
}

/// Drops every buffer retained by the calling thread's arena.
///
/// Pool workers call this (through the scheduler's idle hook) before
/// parking indefinitely, so an idle pool holds no solve-sized buffers;
/// the next solve warms the list back up with a handful of cold
/// (counted) allocations.
pub fn release_thread() {
    SCRATCH.with(|s| s.borrow_mut().release());
}

/// Buffers currently retained by the calling thread's arena (test and
/// diagnostics hook).
pub fn retained_on_thread() -> usize {
    SCRATCH.with(|s| s.borrow().retained())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` with the arena forced on or off via an installed
    /// context — the innermost context wins over the process gate, so
    /// parallel tests never race on the global.
    fn with_arena<R>(on: bool, f: impl FnOnce() -> R) -> R {
        crate::SolveCtx::new(crate::MulBackend::Schoolbook)
            .with_arena(on)
            .run(f)
    }

    #[test]
    fn take_reuses_put_buffers_when_enabled() {
        with_arena(true, || {
            let mut s = Scratch::new();
            let mut v = s.take(16);
            v.extend_from_slice(&[1, 2, 3]);
            let cap = v.capacity();
            let ptr = v.as_ptr();
            s.put(v);
            assert_eq!(s.retained(), 1);
            let v2 = s.take(8);
            // Same buffer back: cleared, same storage.
            assert_eq!(v2.len(), 0);
            assert_eq!(v2.capacity(), cap);
            assert_eq!(v2.as_ptr(), ptr);
            assert_eq!(s.retained(), 0);
            s.put(v2);
            assert_eq!(s.outstanding(), 0);
        });
    }

    #[test]
    fn disabled_arena_always_allocates_and_counts() {
        with_arena(false, || {
            let mut s = Scratch::new();
            let before = rr_obs::alloc::reading();
            let v = s.take(4);
            s.put(v);
            let v = s.take(4);
            s.put(v);
            let d = rr_obs::alloc::reading() - before;
            assert_eq!(d.allocs, 2, "every take counts with the gate off");
            assert_eq!(s.retained(), 0, "nothing retained with the gate off");
        });
    }

    #[test]
    fn enabled_arena_counts_only_cold_misses() {
        with_arena(true, || {
            let mut s = Scratch::new();
            let before = rr_obs::alloc::reading();
            for _ in 0..10 {
                let v = s.take(32);
                s.put(v);
            }
            let d = rr_obs::alloc::reading() - before;
            assert_eq!(d.allocs, 1, "one cold miss, nine reuses");
        });
    }

    #[test]
    fn session_sink_sees_per_phase_allocs() {
        let ctx = crate::SolveCtx::new(crate::MulBackend::Schoolbook).with_arena(false);
        ctx.run(|| {
            crate::metrics::with_phase(crate::metrics::Phase::RemainderSeq, || {
                let mut s = Scratch::new();
                let v = s.take(8);
                s.put(v);
            });
        });
        let a = ctx.alloc_stats();
        assert_eq!(a.phase(crate::metrics::Phase::RemainderSeq).allocs, 1);
        assert_eq!(
            a.phase(crate::metrics::Phase::RemainderSeq).bytes,
            8 * std::mem::size_of::<Limb>() as u64
        );
        assert_eq!(a.total().allocs, 1);
    }

    #[test]
    fn undersized_buffers_are_not_reused_as_is() {
        with_arena(true, || {
            let mut s = Scratch::new();
            s.put(Vec::with_capacity(4));
            s.put(Vec::with_capacity(100));
            let v = s.take(50);
            assert!(v.capacity() >= 50);
            assert_eq!(s.retained(), 1, "the 4-limb buffer stays for later");
        });
    }

    #[test]
    fn retention_is_bounded() {
        with_arena(true, || {
            let mut s = Scratch::new();
            for _ in 0..(MAX_RETAINED + 10) {
                s.put(Vec::with_capacity(1));
            }
            assert_eq!(s.retained(), MAX_RETAINED);
            s.put(Vec::with_capacity(MAX_RETAINED_LIMBS + 1));
            assert_eq!(s.retained(), MAX_RETAINED, "outsized buffer dropped");
            s.release();
            assert_eq!(s.retained(), 0);
        });
    }
}
