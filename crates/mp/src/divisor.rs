//! A prepared divisor for repeated exact divisions.
//!
//! The subresultant remainder sequence divides *every* coefficient of an
//! iteration by the same scalar (`c²·d²` in the recurrence), and the tree
//! stage divides every entry of a `Mat2` by the same `c²`. Under
//! [`crate::DivBackend::Newton`] each of those divisions is a 2-adic
//! (Hensel) quotient recovery `q = (u/2^z)·v'⁻¹ mod 2^(64k)` — and the
//! 2-adic inverse `v'⁻¹` depends only on the divisor. [`ExactDivisor`]
//! computes it once, lazily, and shares it across all divisions by the
//! same divisor: each division then costs a single truncated product
//! `M(k)` instead of Algorithm D's `k·‖v‖` limb operations.
//!
//! The inverse is *prefix-stable* (the 2-adic inverse is unique, so
//! extending the precision never rewrites low limbs), which makes the
//! cache monotone: a division needing more limbs extends it in place
//! under a write lock; everyone else reads. It is extended along the
//! power-of-two length sequence `1, 2, 4, …` regardless of the order
//! concurrent divisions request precision, so the recorded
//! [`crate::NewtonDivStats::hensel_steps`] are schedule-independent —
//! the end-to-end differential tests assert physical counters are
//! deterministic even for parallel solves.
//!
//! Under [`crate::DivBackend::Schoolbook`] the struct degrades to a plain
//! wrapper around Algorithm D, and either way the cost charge is
//! identical to [`Int::div_exact`]'s, so the recorded model is invariant
//! under `RR_DIV` by construction.

use crate::int::Sign;
use crate::limb::Limb;
use crate::nat::{self, newton_div};
use crate::{metrics, DivBackend, Int};
use parking_lot::RwLock;

/// Quotient limb count at or above which a prepared division takes the
/// 2-adic path. Much lower than
/// [`newton_div::NEWTON_EXACT_THRESHOLD`]: the inverse is amortized
/// across the whole batch, so each division only pays one truncated
/// product.
const PREPARED_EXACT_THRESHOLD: usize = 2;

/// Quotient limb count at or above which [`ExactDivisor::div_exact_dot`]
/// fuses the whole linear combination into the 2-adic domain. Below it
/// the truncated products are too small to beat the plain full products
/// plus Algorithm D.
const FUSED_DOT_THRESHOLD: usize = 16;

/// A divisor prepared for repeated exact division (see module docs).
///
/// ```
/// use rr_mp::{ExactDivisor, Int};
/// let d = Int::from(7u64).pow(100);
/// let prepared = ExactDivisor::new(d.clone());
/// for m in [3u64, 5, 11] {
///     let u = &d * &Int::from(m).pow(80);
///     assert_eq!(prepared.div_exact(&u), u.div_exact(&d));
/// }
/// ```
pub struct ExactDivisor {
    d: Int,
    /// 2-adic valuation of `d`: `|d| = odd · 2^shift`.
    shift: u64,
    /// The odd part of `|d|`, normalized.
    odd: Vec<Limb>,
    /// Fixed-width partial inverse `odd⁻¹ mod 2^(64·len)`; grows
    /// monotonically by doubling. Seeded with one limb at construction so
    /// extension never starts from empty.
    inv: RwLock<Vec<Limb>>,
}

impl std::fmt::Debug for ExactDivisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactDivisor")
            .field("d", &self.d)
            .field("shift", &self.shift)
            .field("inv_limbs", &self.inv.read().len())
            .finish()
    }
}

impl ExactDivisor {
    /// Prepares `d` for repeated exact division.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn new(d: Int) -> ExactDivisor {
        assert!(!d.is_zero(), "division by zero");
        let shift = d.trailing_zeros().unwrap_or(0);
        let odd = nat::shr(d.magnitude(), shift);
        let seed = newton_div::inv_limb(odd[0]);
        ExactDivisor { d, shift, odd, inv: RwLock::new(vec![seed]) }
    }

    /// The divisor this was prepared from.
    pub fn divisor(&self) -> &Int {
        &self.d
    }

    /// `u / d`, exactly — same contract and cost charge as
    /// [`Int::div_exact`], but divisions by the same prepared divisor
    /// share one cached 2-adic inverse under
    /// [`crate::DivBackend::Newton`].
    pub fn div_exact(&self, u: &Int) -> Int {
        metrics::record_div(u.bit_len(), self.d.bit_len());
        let q = match nat::active_div_backend() {
            DivBackend::Schoolbook => nat::div::div_exact(u.magnitude(), self.d.magnitude()),
            DivBackend::Newton => self.div_exact_2adic(u.magnitude()),
        };
        Int::from_sign_mag(u.sign().mul(self.d.sign()), q)
    }

    fn div_exact_2adic(&self, u: &[Limb]) -> Vec<Limb> {
        if nat::is_zero(u) {
            return Vec::new();
        }
        // Exactness means u carries at least the divisor's power of two.
        let us = nat::shr(u, self.shift);
        let k = (us.len() + 1).saturating_sub(self.odd.len());
        if k < PREPARED_EXACT_THRESHOLD || self.odd.len() < 2 {
            return nat::div::div_exact(u, self.d.magnitude());
        }
        let q = nat::normalized(self.mul_by_inv(&us, k));
        self.check(&q, &us);
        q
    }

    /// `us · odd⁻¹ mod 2^(64k)`, extending the cached inverse first when
    /// it is too short, and recording one 2-adic division (plus any
    /// lifting steps) in [`crate::NewtonDivStats`].
    fn mul_by_inv(&self, us: &[Limb], k: usize) -> Vec<Limb> {
        let mut steps = 0u64;
        let fast = {
            let inv = self.inv.read();
            (inv.len() >= k).then(|| newton_div::mul_low(us, &inv, k))
        };
        let q = fast.unwrap_or_else(|| {
            let mut inv = self.inv.write();
            // Extend along powers of two (another thread may have raced
            // us here; the doubling ladder makes the total step count
            // independent of how requests interleave).
            newton_div::extend_inv_2adic(&self.odd, &mut inv, k.next_power_of_two(), &mut steps);
            newton_div::mul_low(us, &inv, k)
        });
        metrics::record_newton_exact_div(steps);
        q
    }

    /// Fused dot-product division: `(Σ pᵢ·p'ᵢ − Σ nᵢ·n'ᵢ) / d`, exactly.
    ///
    /// This is the subresultant remainder step's per-coefficient kernel
    /// (`f_{i+1,j} = (f_{i,j}·q₀ + f_{i,j−1}·q₁ − c_i²·f_{i−1,j}) / c_{i−1}²`).
    /// Under [`crate::DivBackend::Newton`] the *entire* combination is
    /// evaluated in the 2-adic domain: every product is a truncated
    /// low product mod `2^(64k)` (with `k` the quotient limb bound), the
    /// accumulator wraps in two's complement, and one more truncated
    /// product by the cached inverse recovers the signed quotient — so
    /// the full multiplications of the unfused step, not just its
    /// division, shrink to quotient-sized work. Under `Schoolbook` the
    /// combination is computed in full and divided by Algorithm D.
    ///
    /// The model charge is identical either way and computed from
    /// operand sizes alone: one multiplication per term pair (exactly
    /// what the unfused step records) and one division at the
    /// accumulator's size bound — invariant under `RR_DIV` by
    /// construction. A unit divisor charges no division, matching the
    /// unfused step's `denominator = 1` special case.
    pub fn div_exact_dot(&self, pos: &[(&Int, &Int)], neg: &[(&Int, &Int)]) -> Int {
        let mut u_est: u64 = 0;
        for (x, y) in pos.iter().chain(neg) {
            let (xb, yb) = (x.bit_len(), y.bit_len());
            metrics::record_mul(xb, yb);
            if !x.is_zero() && !y.is_zero() {
                u_est = u_est.max(xb + yb);
            }
        }
        // |acc| < 2^(u_est + 2) for up to four terms.
        let unit = self.shift == 0 && self.odd == [1];
        if !unit {
            metrics::record_div(u_est + 2, self.d.bit_len());
        }
        // Quotient bound: |acc/d| < 2^(u_est + 3 − ‖d‖); one extra limb
        // for the two's-complement sign bit, one for slack.
        let k = ((u_est + 3).saturating_sub(self.d.bit_len()) / 64) as usize + 2;
        if unit
            || k < FUSED_DOT_THRESHOLD
            || self.odd.len() < 2
            || nat::active_div_backend() == DivBackend::Schoolbook
        {
            return self.dot_plain(pos, neg, unit);
        }
        let q = self.dot_2adic(pos, neg, k);
        debug_assert_eq!(
            q,
            self.dot_plain(pos, neg, unit),
            "div_exact_dot called with inexact quotient"
        );
        q
    }

    /// Unfused reference path: full products, then one exact division.
    /// Unmetered — `div_exact_dot` has already charged the model.
    fn dot_plain(&self, pos: &[(&Int, &Int)], neg: &[(&Int, &Int)], unit: bool) -> Int {
        let mut acc = Int::zero();
        for (x, y) in pos {
            acc.add_mul_assign_raw(x, y, false);
        }
        for (x, y) in neg {
            acc.add_mul_assign_raw(x, y, true);
        }
        if unit {
            return if self.d.is_negative() { -acc } else { acc };
        }
        let q = nat::div::div_exact(acc.magnitude(), self.d.magnitude());
        Int::from_sign_mag(acc.sign().mul(self.d.sign()), q)
    }

    /// The fused 2-adic path: all arithmetic mod `2^(64·width)`.
    fn dot_2adic(&self, pos: &[(&Int, &Int)], neg: &[(&Int, &Int)], k: usize) -> Int {
        // Headroom so stripping the divisor's power of two still leaves
        // k valid limbs.
        let kw = k + (self.shift as usize).div_ceil(64);
        // The accumulator and the per-term product buffer both come from
        // the scratch arena; one buffer `t` serves every term in turn.
        let mut acc = crate::scratch::take(kw);
        acc.resize(kw, 0);
        let mut t = crate::scratch::take(kw);
        let mut fold = |acc: &mut [Limb], x: &Int, y: &Int, negate: bool| {
            let s = x.sign().mul(y.sign());
            if s == Sign::Zero {
                return;
            }
            newton_div::mul_low_into(x.magnitude(), y.magnitude(), kw, &mut t);
            if (s == Sign::Positive) != negate {
                newton_div::add_shifted_mod(acc, &t, 0);
            } else {
                newton_div::mod_sub_assign(acc, &t);
            }
        };
        for (x, y) in pos {
            fold(&mut acc, x, y, false);
        }
        for (x, y) in neg {
            fold(&mut acc, x, y, true);
        }
        // acc ≡ true accumulator mod 2^(64kw), two's complement; it is
        // divisible by 2^shift, so the shift is a plain truncation.
        let acc_shifted = nat::shr(&acc, self.shift);
        crate::scratch::put(t);
        crate::scratch::put(acc);
        let q_mod = self.mul_by_inv(&acc_shifted, k);
        let (sign, mag) = if q_mod[k - 1] >> (Limb::BITS - 1) == 1 {
            (Sign::Negative, newton_div::mod_sub(&[], &q_mod, k))
        } else {
            (Sign::Positive, q_mod)
        };
        Int::from_sign_mag(sign.mul(self.d.sign()), nat::normalized(mag))
    }

    /// Debug-build exactness check, mirroring `div_exact`'s contract.
    fn check(&self, q: &[Limb], us: &[Limb]) {
        debug_assert_eq!(
            nat::mul_auto(q, &self.odd),
            nat::normalized(us.to_vec()),
            "div_exact called with inexact quotient"
        );
        let _ = (q, us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MulBackend, SolveCtx};

    fn newton_ctx() -> SolveCtx {
        SolveCtx::new(MulBackend::Fast).with_div_backend(DivBackend::Newton)
    }

    #[test]
    fn matches_plain_div_exact_across_shapes() {
        let ctx = newton_ctx();
        ctx.run(|| {
            for dpow in [1u32, 7, 40, 200, 900] {
                for sh in [0u64, 1, 64, 129] {
                    let d = Int::from(0x9e37_79b9u64).pow(dpow) << sh;
                    let prepared = ExactDivisor::new(d.clone());
                    for qpow in [0u32, 3, 50, 400] {
                        for qsign in [1i64, -1] {
                            let q = Int::from(qsign * 12345) * Int::from(11u64).pow(qpow);
                            let u = &d * &q;
                            assert_eq!(prepared.div_exact(&u), q, "dpow={dpow} sh={sh} qpow={qpow}");
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn inverse_is_cached_across_divisions() {
        let ctx = newton_ctx();
        let d = Int::from(3u64).pow(5000); // ~165 limbs, odd
        let prepared = ExactDivisor::new(d.clone());
        ctx.run(|| {
            let q0 = Int::from(5u64).pow(3400); // quotient ~124 limbs
            let u0 = &d * &q0;
            assert_eq!(prepared.div_exact(&u0), q0);
            let after_first = ctx.newton_div_stats();
            assert!(after_first.exact_divs >= 1);
            assert!(after_first.hensel_steps >= 1, "first division lifts the inverse");

            // Subsequent no-larger divisions reuse the lifted inverse.
            for m in [7u64, 11, 13] {
                let q = Int::from(m) * Int::from(5u64).pow(3000);
                assert_eq!(prepared.div_exact(&(&d * &q)), q);
            }
            let after_batch = ctx.newton_div_stats();
            assert_eq!(
                after_batch.hensel_steps, after_first.hensel_steps,
                "cached inverse: no further lifting for quotients that fit"
            );
            assert_eq!(after_batch.exact_divs, after_first.exact_divs + 3);
        });
    }

    #[test]
    fn negative_and_small_operands() {
        let ctx = newton_ctx();
        ctx.run(|| {
            let d = Int::from(-3i64);
            let prepared = ExactDivisor::new(d.clone());
            assert_eq!(prepared.div_exact(&Int::from(-21i64)), Int::from(7i64));
            assert_eq!(prepared.div_exact(&Int::from(21i64)), Int::from(-7i64));
            assert_eq!(prepared.div_exact(&Int::zero()), Int::zero());
        });
    }

    #[test]
    fn schoolbook_backend_matches() {
        let d = Int::from(17u64).pow(300);
        let q = Int::from(19u64).pow(250);
        let u = &d * &q;
        let school = SolveCtx::new(MulBackend::Schoolbook)
            .run(|| ExactDivisor::new(d.clone()).div_exact(&u));
        let newton = newton_ctx().run(|| ExactDivisor::new(d.clone()).div_exact(&u));
        assert_eq!(school, q);
        assert_eq!(newton, q);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_rejected() {
        ExactDivisor::new(Int::zero());
    }

    /// Builds a 3-term combination `x0·y0 + x1·y1 − t·1` that equals
    /// `q·d` exactly, so `div_exact_dot` must return `q`.
    fn dot_case(d: &Int, q: &Int, x0: &Int, y0: &Int, x1: &Int, y1: &Int) -> (Int, Int) {
        let t = x0 * y0 + x1 * y1 - q * d;
        (t, Int::one())
    }

    #[test]
    fn fused_dot_matches_construction() {
        let ctx = newton_ctx();
        ctx.run(|| {
            let d = Int::from(0x9e37_79b9u64).pow(150) << 3; // even divisor
            let x0 = Int::from(11u64).pow(700);
            let y0 = Int::from(13u64).pow(650);
            let x1 = -Int::from(7u64).pow(720);
            let y1 = Int::from(17u64).pow(600);
            for qsign in [1i64, -1] {
                for qpow in [0u32, 90, 1100] {
                    let q = Int::from(qsign * 997) * Int::from(3u64).pow(qpow);
                    let (t, one) = dot_case(&d, &q, &x0, &y0, &x1, &y1);
                    let prepared = ExactDivisor::new(d.clone());
                    let got =
                        prepared.div_exact_dot(&[(&x0, &y0), (&x1, &y1)], &[(&t, &one)]);
                    assert_eq!(got, q, "qsign={qsign} qpow={qpow}");
                }
            }
            // Zero quotient and zero terms.
            let prepared = ExactDivisor::new(d.clone());
            let zero = Int::zero();
            assert_eq!(
                prepared.div_exact_dot(&[(&d, &Int::one())], &[(&d, &Int::one())]),
                Int::zero()
            );
            assert_eq!(
                prepared.div_exact_dot(&[(&d, &Int::one()), (&zero, &x0)], &[]),
                Int::one()
            );
        });
    }

    #[test]
    fn fused_dot_unit_and_negative_divisors() {
        let ctx = newton_ctx();
        ctx.run(|| {
            let a = Int::from(5u64).pow(500);
            let b = Int::from(3u64).pow(700);
            let plain = &a * &b - Int::from(12345i64);
            let m12345 = Int::from(12345i64);
            let one_d = ExactDivisor::new(Int::one());
            assert_eq!(
                one_d.div_exact_dot(&[(&a, &b)], &[(&m12345, &Int::one())]),
                plain
            );
            let neg_one = ExactDivisor::new(-Int::one());
            assert_eq!(
                neg_one.div_exact_dot(&[(&a, &b)], &[(&m12345, &Int::one())]),
                -&plain
            );
            let neg_d = Int::from(-7i64) * Int::from(7u64).pow(399); // −7^400
            let q = Int::from(11u64).pow(300);
            let u = &neg_d * &q;
            let prepared = ExactDivisor::new(neg_d);
            assert_eq!(prepared.div_exact_dot(&[(&u, &Int::one())], &[]), q);
        });
    }

    #[test]
    fn fused_dot_model_charge_is_backend_invariant() {
        let d = Int::from(19u64).pow(320);
        let x0 = Int::from(23u64).pow(500);
        let y0 = Int::from(29u64).pow(480);
        let q = Int::from(31u64).pow(440);
        let run = |ctx: &SolveCtx| {
            ctx.run(|| {
                let (t, one) = dot_case(&d, &q, &x0, &y0, &Int::zero(), &Int::zero());
                ExactDivisor::new(d.clone()).div_exact_dot(
                    &[(&x0, &y0), (&Int::zero(), &Int::zero())],
                    &[(&t, &one)],
                )
            })
        };
        let school_ctx = SolveCtx::new(MulBackend::Schoolbook);
        let newton_ctx = newton_ctx();
        assert_eq!(run(&school_ctx), q);
        assert_eq!(run(&newton_ctx), q);
        assert_eq!(school_ctx.snapshot(), newton_ctx.snapshot());
        assert!(newton_ctx.newton_div_stats().exact_divs >= 1);
        assert_eq!(school_ctx.newton_div_stats().exact_divs, 0);
    }
}
