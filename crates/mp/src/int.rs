//! The signed arbitrary-precision integer type [`Int`].

use crate::limb::Limb;
use crate::metrics;
use crate::nat;
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Shl, Shr, Sub, SubAssign};

/// Sign of an [`Int`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// The opposite sign (zero is its own opposite).
    pub fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Product-of-signs.
    #[allow(clippy::should_implement_trait)] // sign algebra, not ring mul
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }

    /// `-1`, `0`, or `1`.
    pub fn as_i32(self) -> i32 {
        match self {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Stored as a sign and a normalized little-endian limb magnitude.
/// Arithmetic uses the classical linear/quadratic algorithms, and every
/// multiplication/division is recorded by [`crate::metrics`] under the
/// thread's current phase (see the crate docs for why this cost model is
/// load-bearing for the reproduction).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    mag: Vec<Limb>,
}

impl Int {
    /// The integer 0.
    #[inline]
    pub fn zero() -> Int {
        Int { sign: Sign::Zero, mag: Vec::new() }
    }

    /// The integer 1.
    #[inline]
    pub fn one() -> Int {
        Int { sign: Sign::Positive, mag: vec![1] }
    }

    /// `2^k`.
    pub fn pow2(k: u64) -> Int {
        Int { sign: Sign::Positive, mag: nat::shl(&[1], k) }
    }

    /// Builds an `Int` from a sign and magnitude, normalizing both.
    pub fn from_sign_mag(sign: Sign, mag: Vec<Limb>) -> Int {
        let mag = nat::normalized(mag);
        if mag.is_empty() {
            Int::zero()
        } else {
            debug_assert!(sign != Sign::Zero, "nonzero magnitude with Zero sign");
            Int { sign, mag }
        }
    }

    /// The sign.
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// `-1`, `0`, or `1`.
    #[inline]
    pub fn signum(&self) -> i32 {
        self.sign.as_i32()
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag == [1]
    }

    /// True iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// True iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// True iff even (zero is even).
    pub fn is_even(&self) -> bool {
        self.mag.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of bits in the magnitude: `‖x‖ = ⌈log2(|x|+1)⌉`; `‖0‖ = 0`.
    ///
    /// This is the paper's size measure for integers.
    #[inline]
    pub fn bit_len(&self) -> u64 {
        nat::bit_len(&self.mag)
    }

    /// Bit `i` of the magnitude.
    pub fn bit(&self, i: u64) -> bool {
        nat::bit(&self.mag, i)
    }

    /// Trailing zero bits of the magnitude; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        nat::trailing_zeros(&self.mag)
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int {
            sign: if self.sign == Sign::Zero { Sign::Zero } else { Sign::Positive },
            mag: self.mag.clone(),
        }
    }

    /// Borrow of the magnitude limbs (little-endian, normalized).
    pub fn magnitude(&self) -> &[Limb] {
        &self.mag
    }

    /// Compares magnitudes, ignoring sign.
    pub fn cmp_abs(&self, other: &Int) -> Ordering {
        nat::cmp(&self.mag, &other.mag)
    }

    /// `self * self` (recorded as one multiplication; uses the selected
    /// backend's squaring kernel).
    pub fn square(&self) -> Int {
        let bits = self.bit_len();
        metrics::record_mul(bits, bits);
        Int::from_sign_mag(self.sign.mul(self.sign), nat::sqr_auto(&self.mag))
    }

    /// Fused `self += x * y`, recorded exactly like `x * y` (one
    /// multiplication at `‖x‖·‖y‖` bit cost) but accumulating in place:
    /// the product magnitude lands in a scratch-arena buffer and folds
    /// into `self` with no intermediate `Int` and no reallocation of the
    /// accumulator. This is the schoolbook polynomial loop's inner
    /// operation.
    pub fn add_mul_assign(&mut self, x: &Int, y: &Int) {
        metrics::record_mul(x.bit_len(), y.bit_len());
        self.add_mul_assign_raw(x, y, false);
    }

    /// Fused `self -= x * y` — [`Int::add_mul_assign`] with the product
    /// negated, recorded identically (one multiplication at `‖x‖·‖y‖`
    /// bit cost). The polynomial accumulation loops in `rr-linalg` and
    /// `rr-poly` subtract scaled rows/coefficients through this.
    pub fn sub_mul_assign(&mut self, x: &Int, y: &Int) {
        metrics::record_mul(x.bit_len(), y.bit_len());
        self.add_mul_assign_raw(x, y, true);
    }

    /// Unmetered `self ±= x·y` — the kernel of [`Int::add_mul_assign`] /
    /// [`Int::sub_mul_assign`], shared with
    /// [`crate::ExactDivisor::div_exact_dot`], whose entry point charges
    /// the model itself before dispatching.
    pub(crate) fn add_mul_assign_raw(&mut self, x: &Int, y: &Int, negate: bool) {
        let mut psign = x.sign.mul(y.sign);
        if negate {
            psign = psign.flip();
        }
        if psign == Sign::Zero {
            return;
        }
        let mut pmag = crate::scratch::take(x.mag.len() + y.mag.len());
        nat::mul_auto_into(&x.mag, &y.mag, &mut pmag);
        if self.sign == Sign::Zero {
            self.sign = psign;
            self.mag.clear();
            self.mag.extend_from_slice(&pmag);
        } else if self.sign == psign {
            nat::add_assign(&mut self.mag, &pmag);
        } else {
            match nat::cmp(&self.mag, &pmag) {
                Ordering::Equal => {
                    self.sign = Sign::Zero;
                    self.mag.clear();
                }
                Ordering::Greater => nat::sub_assign(&mut self.mag, &pmag),
                Ordering::Less => {
                    nat::rsub_assign(&mut self.mag, &pmag);
                    self.sign = self.sign.flip();
                }
            }
        }
        crate::scratch::put(pmag);
    }

    /// `self * rhs` written into `out`, recorded exactly like `*` (one
    /// multiplication at `‖self‖·‖rhs‖` bit cost) but reusing `out`'s
    /// magnitude storage instead of allocating a fresh `Int`. `out`'s
    /// previous value is discarded (its buffer is fully overwritten —
    /// dirty contents are fine).
    pub fn mul_into(&self, rhs: &Int, out: &mut Int) {
        metrics::record_mul(self.bit_len(), rhs.bit_len());
        nat::mul_auto_into(&self.mag, &rhs.mag, &mut out.mag);
        out.sign = if out.mag.is_empty() {
            Sign::Zero
        } else {
            self.sign.mul(rhs.sign)
        };
    }

    /// `self^e` by binary exponentiation.
    pub fn pow(&self, e: u32) -> Int {
        if e == 0 {
            return Int::one();
        }
        let mut base = self.clone();
        let mut acc: Option<Int> = None;
        let mut e = e;
        loop {
            if e & 1 == 1 {
                acc = Some(match acc {
                    None => base.clone(),
                    Some(a) => &a * &base,
                });
            }
            e >>= 1;
            if e == 0 {
                break;
            }
            base = base.square();
        }
        acc.expect("e > 0")
    }

    /// Integer square root: `⌊√self⌋`, by Newton's method on integers.
    ///
    /// # Panics
    /// Panics if `self` is negative.
    pub fn isqrt(&self) -> Int {
        assert!(!self.is_negative(), "isqrt of a negative number");
        if self.is_zero() || self.is_one() {
            return self.clone();
        }
        // Initial guess: 2^⌈bits/2⌉ ≥ √self, then x' = (x + self/x)/2
        // decreases monotonically to ⌊√self⌋.
        let mut x = Int::pow2(self.bit_len().div_ceil(2));
        loop {
            let next = (&x + self / &x).shr_floor(1);
            if next >= x {
                debug_assert!(&x * &x <= *self && (&x + Int::one()) * (&x + Int::one()) > *self);
                return x;
            }
            x = next;
        }
    }

    /// Truncating division with remainder: `self = q*d + r`, `|r| < |d|`,
    /// `sign(r) = sign(self)` (matching Rust's primitive `%`).
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &Int) -> (Int, Int) {
        assert!(!d.is_zero(), "division by zero");
        // The Algorithm D work estimate is charged before any kernel
        // runs, so the recorded cost model is invariant under the
        // division backend (`RR_DIV`) by construction.
        metrics::record_div(self.bit_len(), d.bit_len());
        let (q, r) = nat::div_rem_auto(&self.mag, &d.mag);
        (
            Int::from_sign_mag(self.sign.mul(d.sign), q),
            Int::from_sign_mag(self.sign, r),
        )
    }

    /// Exact division: `self / d` asserting (in debug builds) that the
    /// remainder is zero. The subresultant recurrences of `rr-poly` rely on
    /// divisions that are provably exact; this names that intent — and
    /// under [`crate::DivBackend::Newton`] the exactness is exploited: the
    /// quotient is recovered 2-adically from low bits, with cost
    /// independent of the divisor's length.
    ///
    /// The cost charge is identical to [`Int::div_rem`]'s (the Algorithm D
    /// work estimate, recorded before any kernel runs), so the model stays
    /// invariant under `RR_DIV`.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn div_exact(&self, d: &Int) -> Int {
        assert!(!d.is_zero(), "division by zero");
        metrics::record_div(self.bit_len(), d.bit_len());
        Int::from_sign_mag(self.sign.mul(d.sign), nat::div_exact_auto(&self.mag, &d.mag))
    }

    /// True iff `d` divides `self` exactly (`d` nonzero).
    pub fn divisible_by(&self, d: &Int) -> bool {
        self.div_rem(d).1.is_zero()
    }

    /// Floor division by `2^k` (arithmetic shift right).
    pub fn shr_floor(&self, k: u64) -> Int {
        let shifted = nat::shr(&self.mag, k);
        if self.sign == Sign::Negative && nat::low_bits_nonzero(&self.mag, k) {
            // floor(-x / 2^k) = -(x >> k) - 1 when bits were lost
            Int::from_sign_mag(Sign::Negative, nat::add(&shifted, &[1]))
        } else {
            Int::from_sign_mag(self.sign, shifted)
        }
    }

    /// Ceiling division by `2^k`.
    pub fn shr_ceil(&self, k: u64) -> Int {
        let shifted = nat::shr(&self.mag, k);
        if self.sign == Sign::Positive && nat::low_bits_nonzero(&self.mag, k) {
            Int::from_sign_mag(Sign::Positive, nat::add(&shifted, &[1]))
        } else {
            Int::from_sign_mag(self.sign, shifted)
        }
    }

    /// Floor division: `⌊self / d⌋`.
    pub fn div_floor(&self, d: &Int) -> Int {
        let (q, r) = self.div_rem(d);
        if !r.is_zero() && (r.sign != d.sign) {
            q - Int::one()
        } else {
            q
        }
    }

    /// Ceiling division: `⌈self / d⌉`.
    pub fn div_ceil(&self, d: &Int) -> Int {
        let (q, r) = self.div_rem(d);
        if !r.is_zero() && (r.sign == d.sign) {
            q + Int::one()
        } else {
            q
        }
    }

    /// Lossy conversion to `f64` (for diagnostics and plotting only).
    /// Overflows to infinity beyond `f64` range.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        let v = if bits <= 64 {
            self.mag.first().copied().unwrap_or(0) as f64
        } else {
            // Keep the top 64 bits and scale by the discarded exponent.
            let top = nat::shr(&self.mag, bits - 64);
            top[0] as f64 * ((bits - 64) as f64).exp2()
        };
        self.signum() as f64 * v
    }

    /// Checked conversion to `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                match self.sign {
                    Sign::Positive if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Negative if m <= i64::MAX as u64 + 1 => Some((m as i64).wrapping_neg()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Checked conversion to `i128`.
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 2 {
            return None;
        }
        let m = self.mag.first().copied().unwrap_or(0) as u128
            | (self.mag.get(1).copied().unwrap_or(0) as u128) << 64;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive if m <= i128::MAX as u128 => Some(m as i128),
            Sign::Negative if m <= i128::MAX as u128 + 1 => Some((m as i128).wrapping_neg()),
            _ => None,
        }
    }
}

impl Default for Int {
    fn default() -> Int {
        Int::zero()
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => nat::cmp(&self.mag, &other.mag),
                Sign::Negative => nat::cmp(&other.mag, &self.mag),
            },
            ord => ord,
        }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                let v = v as u128;
                Int::from_sign_mag(
                    if v == 0 { Sign::Zero } else { Sign::Positive },
                    vec![v as Limb, (v >> 64) as Limb],
                )
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                let (sign, mag) = match (v as i128).cmp(&0) {
                    Ordering::Equal => (Sign::Zero, 0u128),
                    Ordering::Greater => (Sign::Positive, v as i128 as u128),
                    Ordering::Less => (Sign::Negative, (v as i128).unsigned_abs()),
                };
                Int::from_sign_mag(sign, vec![mag as Limb, (mag >> 64) as Limb])
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, u128, usize);
from_signed!(i8, i16, i32, i64, i128, isize);

fn add_impl(a: &Int, b: &Int) -> Int {
    match (a.sign, b.sign) {
        (Sign::Zero, _) => b.clone(),
        (_, Sign::Zero) => a.clone(),
        (sa, sb) if sa == sb => Int::from_sign_mag(sa, nat::add(&a.mag, &b.mag)),
        (sa, _) => match nat::cmp(&a.mag, &b.mag) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::from_sign_mag(sa, nat::sub(&a.mag, &b.mag)),
            Ordering::Less => Int::from_sign_mag(sa.flip(), nat::sub(&b.mag, &a.mag)),
        },
    }
}

fn mul_impl(a: &Int, b: &Int) -> Int {
    // Recorded before the kernel dispatch: the event and its ‖a‖·‖b‖ bit
    // cost are identical under both multiplication backends.
    metrics::record_mul(a.bit_len(), b.bit_len());
    Int::from_sign_mag(a.sign.mul(b.sign), nat::mul_auto(&a.mag, &b.mag))
}

macro_rules! binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                $impl_fn(self, rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $impl_fn(self, &rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                $impl_fn(&self, rhs)
            }
        }
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $impl_fn(&self, &rhs)
            }
        }
    };
}

binop!(Add, add, add_impl);
binop!(Sub, sub, |a: &Int, b: &Int| add_impl(a, &(-b)));
binop!(Mul, mul, mul_impl);
binop!(Div, div, |a: &Int, b: &Int| a.div_rem(b).0);
binop!(Rem, rem, |a: &Int, b: &Int| a.div_rem(b).1);

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int { sign: self.sign.flip(), mag: self.mag.clone() }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(mut self) -> Int {
        self.sign = self.sign.flip();
        self
    }
}

impl Int {
    /// In-place kernel of `+=` / `-=`: folds `±rhs` into `self` reusing
    /// the accumulator's storage on every path (linear, uncharged —
    /// additions are free in the paper's cost model).
    fn add_assign_impl(&mut self, rhs: &Int, negate: bool) {
        let rsign = if negate { rhs.sign.flip() } else { rhs.sign };
        if rsign == Sign::Zero {
            return;
        }
        if self.sign == Sign::Zero {
            self.sign = rsign;
            self.mag.clear();
            self.mag.extend_from_slice(&rhs.mag);
        } else if self.sign == rsign {
            nat::add_assign(&mut self.mag, &rhs.mag);
        } else {
            match nat::cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => {
                    self.sign = Sign::Zero;
                    self.mag.clear();
                }
                Ordering::Greater => nat::sub_assign(&mut self.mag, &rhs.mag),
                Ordering::Less => {
                    nat::rsub_assign(&mut self.mag, &rhs.mag);
                    self.sign = self.sign.flip();
                }
            }
        }
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        self.add_assign_impl(rhs, false);
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        self.add_assign_impl(rhs, true);
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl Shl<u64> for &Int {
    type Output = Int;
    fn shl(self, k: u64) -> Int {
        Int::from_sign_mag(self.sign, nat::shl(&self.mag, k))
    }
}

impl Shl<u64> for Int {
    type Output = Int;
    fn shl(self, k: u64) -> Int {
        &self << k
    }
}

/// Arithmetic (floor) right shift — see [`Int::shr_floor`].
impl Shr<u64> for &Int {
    type Output = Int;
    fn shr(self, k: u64) -> Int {
        self.shr_floor(k)
    }
}

impl Shr<u64> for Int {
    type Output = Int;
    fn shr(self, k: u64) -> Int {
        self.shr_floor(k)
    }
}

impl std::iter::Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

impl<'a> std::iter::Sum<&'a Int> for Int {
    fn sum<I: Iterator<Item = &'a Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

impl std::iter::Product for Int {
    fn product<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::one(), |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i128) -> Int {
        Int::from(v)
    }

    #[test]
    fn constructors_and_predicates() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert!(!Int::one().is_zero());
        assert!(i(-5).is_negative());
        assert!(i(5).is_positive());
        assert!(i(0).is_even());
        assert!(i(4).is_even());
        assert!(!i(7).is_even());
        assert!(i(-3).signum() == -1);
        assert_eq!(Int::pow2(0), Int::one());
        assert_eq!(Int::pow2(10), i(1024));
        assert_eq!(Int::pow2(100).bit_len(), 101);
    }

    #[test]
    fn conversions_roundtrip() {
        for v in [0i128, 1, -1, i64::MAX as i128, i64::MIN as i128, i128::MAX, i128::MIN, 42, -4242] {
            assert_eq!(Int::from(v).to_i128(), Some(v), "{v}");
        }
        assert_eq!(i(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(i(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(i(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(i(i64::MIN as i128 - 1).to_i64(), None);
        assert_eq!((Int::pow2(130)).to_i128(), None);
    }

    #[test]
    fn signed_addition_table() {
        for a in -5i128..=5 {
            for b in -5i128..=5 {
                assert_eq!(i(a) + i(b), i(a + b), "{a}+{b}");
                assert_eq!(i(a) - i(b), i(a - b), "{a}-{b}");
                assert_eq!(i(a) * i(b), i(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn division_matches_rust_truncation() {
        for a in [-100i128, -37, -1, 0, 1, 17, 99, 100] {
            for b in [-7i128, -3, -1, 1, 2, 10] {
                let (q, r) = i(a).div_rem(&i(b));
                assert_eq!(q, i(a / b), "{a}/{b}");
                assert_eq!(r, i(a % b), "{a}%{b}");
            }
        }
    }

    #[test]
    fn floor_and_ceil_division() {
        assert_eq!(i(7).div_floor(&i(2)), i(3));
        assert_eq!(i(-7).div_floor(&i(2)), i(-4));
        assert_eq!(i(7).div_floor(&i(-2)), i(-4));
        assert_eq!(i(-7).div_floor(&i(-2)), i(3));
        assert_eq!(i(7).div_ceil(&i(2)), i(4));
        assert_eq!(i(-7).div_ceil(&i(2)), i(-3));
        assert_eq!(i(7).div_ceil(&i(-2)), i(-3));
        assert_eq!(i(-7).div_ceil(&i(-2)), i(4));
        assert_eq!(i(6).div_floor(&i(2)), i(3));
        assert_eq!(i(6).div_ceil(&i(2)), i(3));
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(i(5) << 3, i(40));
        assert_eq!(i(-5) << 3, i(-40));
        assert_eq!(i(40) >> 3, i(5));
        assert_eq!(i(41) >> 3, i(5)); // floor
        assert_eq!(i(-41) >> 3, i(-6)); // floor
        assert_eq!(i(-40) >> 3, i(-5)); // exact
        assert_eq!(i(41).shr_ceil(3), i(6));
        assert_eq!(i(-41).shr_ceil(3), i(-5));
        assert_eq!(i(40).shr_ceil(3), i(5));
        assert_eq!(i(0) >> 5, i(0));
    }

    #[test]
    fn ordering_across_signs() {
        let mut v = vec![i(3), i(-10), i(0), i(7), i(-2), Int::pow2(70), -Int::pow2(70)];
        v.sort();
        assert_eq!(
            v,
            vec![-Int::pow2(70), i(-10), i(-2), i(0), i(3), i(7), Int::pow2(70)]
        );
    }

    #[test]
    fn pow_and_square() {
        assert_eq!(i(3).pow(0), Int::one());
        assert_eq!(i(3).pow(4), i(81));
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(8), i(256));
        assert_eq!(i(10).pow(20), Int::from(100_000_000_000_000_000_000u128));
        assert_eq!(i(-7).square(), i(49));
    }

    #[test]
    fn add_mul_assign_matches_operators() {
        for acc in [-50i128, -6, 0, 6, 50] {
            for x in [-7i128, -1, 0, 1, 3] {
                for y in [-2i128, 0, 2, 9] {
                    let mut got = i(acc);
                    got.add_mul_assign(&i(x), &i(y));
                    assert_eq!(got, i(acc + x * y), "{acc} += {x}*{y}");
                }
            }
        }
        // multi-limb, sign-flipping accumulation
        let mut got = -Int::pow2(200);
        got.add_mul_assign(&Int::pow2(150), &Int::pow2(51));
        assert_eq!(got, Int::pow2(200));
    }

    #[test]
    fn add_mul_assign_records_one_mul() {
        use crate::metrics;
        let before = metrics::snapshot();
        let mut acc = i(10);
        acc.add_mul_assign(&i(12345), &i(99999));
        let d = metrics::snapshot() - before;
        assert_eq!(d.total().mul_count, 1);
        assert_eq!(d.total().mul_bits, 14 * 17);
        // zero operands still record, like `x * y` does
        let before = metrics::snapshot();
        acc.add_mul_assign(&Int::zero(), &i(5));
        assert_eq!((metrics::snapshot() - before).total().mul_count, 1);
    }

    #[test]
    fn div_exact_and_divisibility() {
        let a = Int::from(123456789u64);
        let b = Int::from(987654321u64);
        let p = &a * &b;
        assert_eq!(p.div_exact(&a), b);
        assert!(p.divisible_by(&b));
        assert!(!(p + Int::one()).divisible_by(&a));
    }

    #[test]
    fn bit_len_matches_size_measure() {
        assert_eq!(Int::zero().bit_len(), 0);
        assert_eq!(Int::one().bit_len(), 1);
        assert_eq!(i(-1).bit_len(), 1);
        assert_eq!(i(255).bit_len(), 8);
        assert_eq!(i(-256).bit_len(), 9);
    }

    #[test]
    fn isqrt_exact_floors() {
        for v in 0i64..200 {
            let r = Int::from(v).isqrt().to_i64().unwrap();
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
        // perfect squares at scale
        let big = Int::from(123_456_789_012_345u64);
        assert_eq!((&big * &big).isqrt(), big);
        assert_eq!((&big * &big + Int::one()).isqrt(), big);
        assert_eq!((&big * &big - Int::one()).isqrt(), &big - Int::one());
        // huge power of two
        assert_eq!(Int::pow2(200).isqrt(), Int::pow2(100));
        assert_eq!((Int::pow2(201)).isqrt().bit_len(), 101);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn isqrt_negative_panics() {
        let _ = Int::from(-4).isqrt();
    }

    #[test]
    fn sum_and_product_iterators() {
        let total: Int = (1..=10i64).map(Int::from).sum();
        assert_eq!(total, i(55));
        let fact: Int = (1..=20i64).map(Int::from).product();
        assert_eq!(fact, Int::from(2_432_902_008_176_640_000i64));
    }
}
