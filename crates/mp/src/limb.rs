//! Machine-word building blocks.
//!
//! A multiprecision magnitude is a little-endian slice of [`Limb`]s
//! (least-significant limb first) with no trailing zero limbs.

/// One machine word of a multiprecision magnitude.
pub type Limb = u64;

/// Double-width type used for carries, borrows, and limb products.
pub type DoubleLimb = u128;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: u32 = Limb::BITS;

/// Splits a double-width value into `(low, high)` limbs.
#[inline(always)]
pub fn split(x: DoubleLimb) -> (Limb, Limb) {
    (x as Limb, (x >> LIMB_BITS) as Limb)
}

/// Fused multiply-add-add on limbs: returns `a * b + c + d` as `(low, high)`.
///
/// Cannot overflow: `(2^64-1)^2 + 2*(2^64-1) = 2^128 - 1`.
#[inline(always)]
pub fn mac(a: Limb, b: Limb, c: Limb, d: Limb) -> (Limb, Limb) {
    split(a as DoubleLimb * b as DoubleLimb + c as DoubleLimb + d as DoubleLimb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_roundtrip() {
        let x: DoubleLimb = (7 << 64) | 13;
        assert_eq!(split(x), (13, 7));
        assert_eq!(split(0), (0, 0));
        assert_eq!(split(DoubleLimb::MAX), (Limb::MAX, Limb::MAX));
    }

    #[test]
    fn mac_no_overflow_at_extremes() {
        let (lo, hi) = mac(Limb::MAX, Limb::MAX, Limb::MAX, Limb::MAX);
        // (2^64-1)^2 + 2(2^64-1) = 2^128 - 1
        assert_eq!(lo, Limb::MAX);
        assert_eq!(hi, Limb::MAX);
    }

    #[test]
    fn mac_small_values() {
        assert_eq!(mac(3, 4, 5, 6), (23, 0));
        assert_eq!(mac(0, 0, 0, 0), (0, 0));
    }
}
