//! Differential tests of the two division backends.
//!
//! The Newton-reciprocal kernel must agree **bit-for-bit** with the
//! paper-faithful Algorithm D kernel on every input. The properties here
//! drive both kernels over ~15k generated operand pairs spanning the
//! shapes where reciprocal iteration breaks: all-ones (near-overflow)
//! divisors that maximize the truncation error of the reciprocal,
//! `u = v·q ± 1` inputs that sit one ulp from a quotient step, operand
//! lengths straddling the dispatch crossover and the limb boundaries of
//! the precision-halving recursion, and heavily unbalanced shapes.
//! Dispatch is forced down the Newton path by calling
//! `div_rem_with_threshold` with a tiny threshold, so even small
//! operands exercise several reciprocal refinement levels.
//!
//! One property additionally checks the Euclidean invariant
//! `u = q·v + r ∧ 0 ≤ r < v` using only multiplication/addition/compare
//! primitives — independent of *either* division kernel, so a bug common
//! to both would still be caught.

use proptest::prelude::*;
use rr_mp::nat::{self, div, mul, newton_div};

type Mag = Vec<u64>;

/// Limb values that maximize/clear carries and reciprocal truncation.
fn edge_limb() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![0u64, 1, 2, 3, u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1])
}

/// A normalized magnitude of up to `max_limbs` limbs: random limbs,
/// edge-value limbs, or an all-ones run, with lengths biased to the
/// crossover and the seed/recursion boundaries of the reciprocal.
fn arb_mag(max_limbs: usize) -> impl Strategy<Value = Mag> {
    let boundary_len = prop::sample::select(vec![
        0usize, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 22, 23, 24, 25, 26, 31, 32, 33, 47, 48, 49,
    ]);
    (
        prop::collection::vec(any::<u64>(), 0..=max_limbs),
        prop::collection::vec(edge_limb(), 0..=max_limbs),
        boundary_len,
        0..4u8,
    )
        .prop_map(move |(random, edges, blen, shape)| {
            nat::normalized(match shape {
                0 => random,
                1 => edges,
                2 => vec![u64::MAX; blen.min(max_limbs)],
                _ => {
                    let mut v = random;
                    v.truncate(blen.min(max_limbs));
                    v
                }
            })
        })
}

/// A nonzero normalized magnitude.
fn arb_divisor(max_limbs: usize) -> impl Strategy<Value = Mag> {
    arb_mag(max_limbs).prop_filter("nonzero divisor", |v| !nat::is_zero(v))
}

fn schoolbook(u: &[u64], v: &[u64]) -> (Mag, Mag) {
    div::div_rem(u, v)
}

/// Both kernels agree, and the result satisfies the Euclidean invariant.
fn check(u: &[u64], v: &[u64], threshold: usize) {
    let expect = schoolbook(u, v);
    let got = newton_div::div_rem_with_threshold(u, v, threshold);
    assert_eq!(got, expect, "newton != schoolbook for u={u:?} v={v:?}");
    let (q, r) = got;
    // Invariant check through mul/add/cmp only — independent of both
    // division kernels.
    let qv_plus_r = nat::add(&mul::mul(&q, v), &r);
    assert_eq!(qv_plus_r, nat::normalized(u.to_vec()), "u = q·v + r");
    assert_eq!(nat::cmp(&r, v), std::cmp::Ordering::Less, "r < v");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn newton_matches_schoolbook_under_forced_dispatch(
        u in arb_mag(48),
        v in arb_divisor(24),
        threshold in 2usize..6,
    ) {
        check(&u, &v, threshold);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn newton_matches_at_default_threshold(
        u in arb_mag(96),
        v in arb_divisor(64),
    ) {
        // Exercises the real dispatch gate: long operands go down the
        // reciprocal path, short ones fall through to Algorithm D.
        let expect = schoolbook(&u, &v);
        prop_assert_eq!(newton_div::div_rem(&u, &v), expect);
    }

    #[test]
    fn all_ones_divisors(
        u in arb_mag(80),
        v_len in 1usize..33,
    ) {
        // v = 2^(64k) − 1 maximizes the reciprocal's truncation error
        // (the seed (vh+1) underestimate is largest here).
        let v = vec![u64::MAX; v_len];
        check(&u, &v, 2);
    }

    #[test]
    fn exact_products_and_off_by_one(
        q in arb_mag(32),
        v in arb_divisor(32),
        delta in 0u8..3,
    ) {
        // u ∈ {v·q, v·q + 1, v·q − 1}: one ulp from a quotient step,
        // where a reciprocal that over- or under-shoots by 1 shows up.
        let exact = mul::mul(&q, &v);
        let u = match delta {
            0 => exact,
            1 => nat::add(&exact, &[1]),
            _ => {
                if nat::is_zero(&exact) {
                    exact
                } else {
                    nat::sub(&exact, &[1])
                }
            }
        };
        check(&u, &v, 2);
    }

    #[test]
    fn crossover_straddling_lengths(
        v_len in 20usize..29,
        q_len in 20usize..29,
        seed in any::<u64>(),
    ) {
        // Operand lengths that straddle NEWTON_DIV_THRESHOLD on both
        // the divisor and quotient axes, at the real default threshold.
        let mut s = seed | 1;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s
        };
        let v: Mag = nat::normalized((0..v_len).map(|_| next()).collect());
        prop_assume!(!nat::is_zero(&v));
        let u = nat::add(
            &mul::mul(&v, &nat::normalized((0..q_len).map(|_| next()).collect())),
            &[next() % 1000],
        );
        let expect = schoolbook(&u, &v);
        prop_assert_eq!(newton_div::div_rem(&u, &v), expect);
    }

    #[test]
    fn unbalanced_operands(
        long in arb_mag(120),
        short in arb_divisor(4),
        threshold in 2usize..5,
    ) {
        // Huge quotient, tiny divisor — and the reverse (quotient empty).
        check(&long, &short, threshold);
        if !nat::is_zero(&long) {
            check(&short, &long, threshold);
        }
    }
}

/// The 2-adic exact kernel agrees with Algorithm D, and the quotient
/// satisfies `q·v = u` through multiplication alone — independent of
/// either division kernel.
fn check_exact(q: &[u64], v: &[u64], threshold: usize) {
    let u = mul::mul(q, v);
    let expect = div::div_exact(&u, v);
    let got = newton_div::div_exact_with_threshold(&u, v, threshold);
    assert_eq!(got, expect, "2-adic != schoolbook for q={q:?} v={v:?}");
    assert_eq!(mul::mul(&got, v), u, "q·v = u");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn exact_division_under_forced_dispatch(
        q in arb_mag(48),
        v in arb_divisor(32),
        threshold in 2usize..6,
    ) {
        check_exact(&q, &v, threshold);
    }

    #[test]
    fn exact_division_at_default_threshold(
        q in arb_mag(64),
        v in arb_divisor(48),
    ) {
        // Real dispatch gate: long quotients take the Hensel path,
        // short ones fall through to Algorithm D.
        check_exact(&q, &v, newton_div::NEWTON_EXACT_THRESHOLD);
    }

    #[test]
    fn exact_division_by_powers_of_two_times_odd(
        q in arb_mag(40),
        v in arb_divisor(16),
        z in 0u64..200,
    ) {
        // Even divisors exercise the 2-adic valuation strip-out; the
        // all-ones/edge-limb shapes of `arb_divisor` land here too.
        let v = nat::shl(&v, z);
        check_exact(&q, &v, 2);
    }

    #[test]
    fn fused_dot_division_matches_plain_arithmetic(
        x0 in arb_mag(40),
        y0 in arb_mag(36),
        x1 in arb_mag(40),
        y1 in arb_mag(36),
        qm in arb_mag(48),
        v in arb_divisor(24),
        z in 0u64..100,
        signs in 0u8..16,
    ) {
        // The fused remainder-step kernel (x0·y0 + x1·y1 − t) / d must
        // equal the plainly computed quotient for any signed operands
        // and any even/odd divisor; t is constructed so the combination
        // is exactly q·d.
        use rr_mp::{DivBackend, ExactDivisor, Int, MulBackend, Sign, SolveCtx};
        let signed = |m: &[u64], bit: u8| {
            let sign = if nat::is_zero(m) {
                Sign::Zero
            } else if signs & (1 << bit) == 0 {
                Sign::Positive
            } else {
                Sign::Negative
            };
            Int::from_sign_mag(sign, m.to_vec())
        };
        let d = Int::from_sign_mag(Sign::Positive, nat::shl(&v, z));
        let (x0, y0) = (signed(&x0, 0), signed(&y0, 1));
        let (x1, y1) = (signed(&x1, 2), signed(&y1, 3));
        let q = signed(&qm, 0);
        let t = (&x0 * &y0) + (&x1 * &y1) - (&q * &d);
        let one = Int::one();
        let ctx = SolveCtx::new(MulBackend::Fast).with_div_backend(DivBackend::Newton);
        let got = ctx.run(|| {
            ExactDivisor::new(d.clone())
                .div_exact_dot(&[(&x0, &y0), (&x1, &y1)], &[(&t, &one)])
        });
        prop_assert_eq!(got, q);
    }

    #[test]
    fn prepared_divisor_matches_plain_exact_division(
        qs in prop::collection::vec(arb_mag(40), 1..5),
        v in arb_divisor(24),
        z in 0u64..100,
    ) {
        // A shared ExactDivisor must give the same quotients as
        // independent Int::div_exact calls, whatever mix of quotient
        // sizes extends its cached inverse.
        use rr_mp::{DivBackend, ExactDivisor, Int, MulBackend, Sign, SolveCtx};
        let d = Int::from_sign_mag(Sign::Positive, nat::shl(&v, z));
        let prepared = ExactDivisor::new(d.clone());
        let ctx = SolveCtx::new(MulBackend::Fast).with_div_backend(DivBackend::Newton);
        ctx.run(|| {
            for qm in &qs {
                let q = Int::from_sign_mag(Sign::Positive, qm.clone());
                let u = &d * &q;
                prop_assert_eq!(prepared.div_exact(&u), u.div_exact(&d));
            }
            Ok(())
        })?;
    }
}

#[test]
fn trivial_shapes() {
    // Below-threshold and degenerate shapes fall through identically.
    assert_eq!(newton_div::div_rem(&[], &[7]), (vec![], vec![]));
    assert_eq!(newton_div::div_rem(&[3], &[7]), (vec![], vec![3]));
    assert_eq!(newton_div::div_rem(&[7], &[7]), (vec![1], vec![]));
    let v = vec![u64::MAX; 30];
    let u = nat::shl(&v, 64 * 30);
    assert_eq!(newton_div::div_rem(&u, &v), schoolbook(&u, &v));
}
