//! Differential suite for the in-place (`_into` / `_assign`) kernels.
//!
//! Every buffer-reusing kernel must agree **bit-for-bit** with its
//! allocating twin on every input, under three hostile conditions the
//! scratch-arena layer introduces:
//!
//! * **dirty output buffers** — `_into` kernels receive a `Vec` already
//!   holding garbage limbs and must fully overwrite it (the scratch
//!   contract says spare capacity is never zeroed);
//! * **poisoned scratch arenas** — the thread-local free list is
//!   pre-seeded with buffers full of sentinel limbs, so any kernel that
//!   reads a scratch buffer before writing it diverges immediately;
//! * **aliased operands** — `f(a, a)` shapes, which the in-place
//!   rewrites make much easier to produce than the allocating API did.
//!
//! Each property runs its kernel with the arena both **on** and **off**
//! (via a private `SolveCtx`, so concurrently running tests with
//! different settings never interfere) and compares both against the
//! allocating twin computed outside any context.

use proptest::prelude::*;
use rr_mp::nat::{self, div, kmul, mul, newton_div};
use rr_mp::{scratch, Int, MulBackend, SolveCtx};

type Mag = Vec<u64>;

/// Sentinel limb pattern that makes "read before write" failures loud.
const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// Seeds the calling thread's arena with dirty buffers, then runs `f`
/// with the arena enabled. The buffers' spare capacity holds `POISON`,
/// so a kernel that trusts scratch contents produces garbage.
fn with_poisoned_arena<T>(f: impl FnOnce() -> T) -> T {
    let ctx = SolveCtx::new(MulBackend::Schoolbook).with_arena(true);
    ctx.run(|| {
        for limbs in [16usize, 64, 256] {
            let mut b = scratch::take(limbs);
            b.resize(limbs, POISON);
            scratch::put(b);
        }
        f()
    })
}

/// Runs `f` with the arena explicitly off (every take allocates fresh).
fn with_arena_off<T>(f: impl FnOnce() -> T) -> T {
    let ctx = SolveCtx::new(MulBackend::Schoolbook).with_arena(false);
    ctx.run(f)
}

/// A dirty output buffer: nonzero length, poisoned contents.
fn dirty_out() -> Mag {
    vec![POISON; 7]
}

/// A magnitude of up to `max_limbs` limbs biased toward carry edges.
fn arb_mag(max_limbs: usize) -> impl Strategy<Value = Mag> {
    let edge = prop::sample::select(vec![0u64, 1, 2, u64::MAX, u64::MAX - 1, 1u64 << 63]);
    (
        prop::collection::vec(any::<u64>(), 0..=max_limbs),
        prop::collection::vec(edge, 0..=max_limbs),
        any::<bool>(),
    )
        .prop_map(|(random, edges, pick)| if pick { random } else { edges })
}

/// Checks one `_into` kernel against its allocating twin under dirty
/// outputs, a poisoned arena, and a disabled arena.
fn check_into(expect: &[u64], run: impl Fn(&mut Mag)) {
    let mut out = dirty_out();
    with_poisoned_arena(|| run(&mut out));
    assert_eq!(out, expect, "poisoned arena");
    let mut out = dirty_out();
    with_arena_off(|| run(&mut out));
    assert_eq!(out, expect, "arena off");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn mul_auto_into_matches_allocating(a in arb_mag(24), b in arb_mag(24)) {
        let expect = mul::mul(&a, &b);
        check_into(&expect, |out| nat::mul_auto_into(&a, &b, out));
    }

    #[test]
    fn mul_into_schoolbook_matches_allocating(a in arb_mag(20), b in arb_mag(20)) {
        let expect = mul::mul(&a, &b);
        check_into(&expect, |out| mul::mul_into(&a, &b, out));
    }

    #[test]
    fn karatsuba_into_matches_schoolbook_deep_recursion(a in arb_mag(40), b in arb_mag(40)) {
        // Threshold 4 forces several Karatsuba levels, all of whose z0,
        // z1, z2, and operand-sum temporaries come from scratch.
        let expect = mul::mul(&a, &b);
        check_into(&expect, |out| kmul::mul_with_threshold_into(&a, &b, 4, out));
    }

    #[test]
    fn square_into_matches_mul_aliased(a in arb_mag(40)) {
        // Aliased-operand shape: squaring IS mul(a, a).
        let expect = mul::mul(&a, &a);
        check_into(&expect, |out| kmul::sqr_with_threshold_into(&a, 4, out));
        check_into(&expect, |out| nat::sqr_auto_into(&a, out));
        check_into(&expect, |out| nat::mul_auto_into(&a, &a, out));
    }

    #[test]
    fn add_into_matches_allocating(a in arb_mag(24), b in arb_mag(24)) {
        let expect = nat::add(&a, &b);
        check_into(&expect, |out| nat::add_into(&a, &b, out));
        // Aliased operands.
        let doubled = nat::add(&a, &a);
        check_into(&doubled, |out| nat::add_into(&a, &a, out));
    }

    #[test]
    fn shl_into_matches_allocating(a in arb_mag(24), bits in 0u64..200) {
        let expect = nat::shl(&a, bits);
        check_into(&expect, |out| nat::shl_into(&a, bits, out));
    }

    #[test]
    fn assign_ops_match_allocating(a in arb_mag(24), b in arb_mag(24)) {
        let a = nat::normalized(a);
        let b = nat::normalized(b);
        let (lo, hi) = if nat::cmp(&a, &b) == std::cmp::Ordering::Greater {
            (b.clone(), a.clone())
        } else {
            (a.clone(), b.clone())
        };
        let mut x = hi.clone();
        nat::add_assign(&mut x, &lo);
        prop_assert_eq!(&x, &nat::add(&hi, &lo));
        let mut x = hi.clone();
        nat::sub_assign(&mut x, &lo);
        prop_assert_eq!(&x, &nat::sub(&hi, &lo));
        let mut x = lo.clone();
        nat::rsub_assign(&mut x, &hi);
        prop_assert_eq!(&x, &nat::sub(&hi, &lo));
        // Aliased self-subtraction cancels to zero.
        let mut x = hi.clone();
        let y = hi.clone();
        nat::sub_assign(&mut x, &y);
        prop_assert!(nat::is_zero(&x));
    }

    #[test]
    fn pack_slots_into_matches_allocating(
        slots in prop::collection::vec(arb_mag(3), 1..12),
        w in 1u64..130,
    ) {
        // Slots must fit in w bits for the packing contract.
        let w = 64 * 3 + w; // always >= any slot's bit length
        let slots: Vec<Mag> = slots.into_iter().map(nat::normalized).collect();
        let refs: Vec<&[u64]> = slots.iter().map(Vec::as_slice).collect();
        let expect = nat::pack_slots(&refs, w);
        check_into(&expect, |out| nat::pack_slots_into(&refs, w, out));
    }

    #[test]
    fn newton_div_rem_into_scratch_matches_schoolbook(
        u in arb_mag(48),
        v in arb_mag(24),
    ) {
        let u = nat::normalized(u);
        let v = nat::normalized(v);
        prop_assume!(!v.is_empty());
        // Threshold 1 forces the Newton reciprocal path (and its
        // mul_low/mod_sub scratch kernels) on every size.
        let expect = div::div_rem(&u, &v);
        let got_poisoned = with_poisoned_arena(|| newton_div::div_rem_with_threshold(&u, &v, 1));
        prop_assert_eq!(&got_poisoned, &expect);
        let got_off = with_arena_off(|| newton_div::div_rem_with_threshold(&u, &v, 1));
        prop_assert_eq!(&got_off, &expect);
    }

    #[test]
    fn newton_exact_div_scratch_matches_schoolbook(
        q in arb_mag(20),
        v in arb_mag(12),
    ) {
        let q = nat::normalized(q);
        let v = nat::normalized(v);
        prop_assume!(!v.is_empty());
        let u = mul::mul(&q, &v);
        let expect = div::div_exact(&u, &v);
        let got_poisoned =
            with_poisoned_arena(|| newton_div::div_exact_with_threshold(&u, &v, 1));
        prop_assert_eq!(&got_poisoned, &expect);
        let got_off = with_arena_off(|| newton_div::div_exact_with_threshold(&u, &v, 1));
        prop_assert_eq!(&got_off, &expect);
    }

    #[test]
    fn int_mul_into_matches_operator(a in any::<i128>(), b in any::<i128>(), s in 0u32..4) {
        // Shift one operand up to multi-limb sizes.
        let x = Int::from(a) << (64 * s) as u64;
        let y = Int::from(b);
        let expect = &x * &y;
        let mut out = Int::from(77);
        with_poisoned_arena(|| x.mul_into(&y, &mut out));
        prop_assert_eq!(&out, &expect);
        let mut out = Int::from(-3);
        with_arena_off(|| x.mul_into(&y, &mut out));
        prop_assert_eq!(&out, &expect);
    }

    #[test]
    fn int_fused_mul_assign_matches_composed(
        acc in any::<i128>(),
        a in any::<i128>(),
        b in any::<i128>(),
        s in 0u32..3,
    ) {
        let acc = Int::from(acc) << (64 * s) as u64;
        let x = Int::from(a) << (64 * s) as u64;
        let y = Int::from(b);
        let expect_sub = &acc - &(&x * &y);
        let expect_add = &acc + &(&x * &y);
        let mut got = acc.clone();
        with_poisoned_arena(|| got.sub_mul_assign(&x, &y));
        prop_assert_eq!(&got, &expect_sub);
        let mut got = acc.clone();
        with_arena_off(|| got.sub_mul_assign(&x, &y));
        prop_assert_eq!(&got, &expect_sub);
        let mut got = acc.clone();
        with_poisoned_arena(|| got.add_mul_assign(&x, &y));
        prop_assert_eq!(&got, &expect_add);
        // Aliased multiplicands: acc -= x·x.
        let expect_sq = &acc - &(&x * &x);
        let mut got = acc.clone();
        with_poisoned_arena(|| got.sub_mul_assign(&x, &x));
        prop_assert_eq!(&got, &expect_sq);
    }

    #[test]
    fn trim_and_normalized_never_reallocate(mut v in arb_mag(24), zeros in 0usize..8) {
        v.extend(std::iter::repeat_n(0u64, zeros));
        let cap = v.capacity();
        let ptr = v.as_ptr();
        nat::trim(&mut v);
        prop_assert_eq!(v.capacity(), cap, "trim reallocated");
        prop_assert_eq!(v.as_ptr(), ptr, "trim moved the buffer");
        prop_assert!(v.last().is_none_or(|&l| l != 0));
        let w = nat::normalized(v.clone());
        prop_assert_eq!(&w, &v);
    }
}

/// The arena must leave results bit-identical even when a buffer
/// retained from one operation is reused by a completely different
/// kernel (cross-kernel dirty reuse).
#[test]
fn cross_kernel_buffer_reuse_is_clean() {
    let ctx = SolveCtx::new(MulBackend::Fast).with_arena(true);
    ctx.run(|| {
        let a: Mag = (1..=32u64).map(|i| i.wrapping_mul(POISON)).collect();
        let b: Mag = (1..=24u64).map(|i| i.wrapping_mul(0x1234_5678_9ABC_DEF1)).collect();
        let expect_mul = mul::mul(&a, &b);
        let expect_sq = mul::mul(&a, &a);
        let (expect_q, expect_r) = div::div_rem(&expect_mul, &b);
        // Interleave kernels so each picks up buffers the previous one
        // retained.
        for _ in 0..4 {
            let mut out = Vec::new();
            kmul::mul_with_threshold_into(&a, &b, 4, &mut out);
            assert_eq!(out, expect_mul);
            let mut sq = Vec::new();
            kmul::sqr_with_threshold_into(&a, 4, &mut sq);
            assert_eq!(sq, expect_sq);
            let (q, r) = newton_div::div_rem_with_threshold(&expect_mul, &b, 1);
            assert_eq!((q, r), (expect_q.clone(), expect_r.clone()));
        }
    });
}

/// Balanced take/put accounting: the hot kernels return every scratch
/// buffer they take, so the arena's outstanding count returns to zero.
#[test]
fn kernels_return_all_scratch_buffers() {
    let ctx = SolveCtx::new(MulBackend::Fast).with_arena(true);
    ctx.run(|| {
        let a: Mag = vec![u64::MAX; 40];
        let b: Mag = vec![0x0123_4567_89AB_CDEF; 33];
        let mut out = Vec::new();
        kmul::mul_with_threshold_into(&a, &b, 4, &mut out);
        let _ = newton_div::div_rem_with_threshold(&out, &b, 1);
        let retained_before = scratch::retained_on_thread();
        let mut out2 = Vec::new();
        kmul::mul_with_threshold_into(&a, &b, 4, &mut out2);
        // Steady state: reuse without growth.
        assert!(scratch::retained_on_thread() >= 1);
        assert!(scratch::retained_on_thread() <= retained_before.max(1) + 2);
        // Releasing the thread arena empties the free list.
        scratch::release_thread();
        assert_eq!(scratch::retained_on_thread(), 0);
    });
}
