//! Multi-threaded behavior of the `metrics` module.
//!
//! The counters are per-thread with a phase that is thread-local state,
//! so concurrent `with_phase` scopes must never cross-attribute events,
//! and snapshot subtraction must be exact (not approximate) around
//! multi-threaded work.
//!
//! The metrics registry is process-global, and integration-test files
//! run as their own process but with tests on concurrent threads — so
//! every test here uses phases disjoint from the other tests in this
//! file, making each snapshot difference exact per phase.

use rr_mp::metrics::{self, Phase};
use rr_mp::Int;
use std::sync::{Arc, Barrier};

/// Bit cost of one `x * y` at the given operand values.
fn mul_bits(x: u64, y: u64) -> u64 {
    let bits = |v: u64| 64 - v.leading_zeros() as u64;
    bits(x) * bits(y)
}

#[test]
fn concurrent_with_phase_scopes_do_not_cross_attribute() {
    // Worker i multiplies under its own phase, all racing through the
    // same barrier so the scopes genuinely overlap. Each phase must
    // receive exactly its own thread's events with its own bit costs.
    let assignments: [(Phase, u64, u32); 3] = [
        (Phase::TreePoly, 0xffff, 11),
        (Phase::Sieve, 0xff, 23),
        (Phase::Newton, 0x7, 37),
    ];
    let before = metrics::snapshot();
    let barrier = Arc::new(Barrier::new(assignments.len()));
    let handles: Vec<_> = assignments
        .iter()
        .map(|&(phase, value, reps)| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                metrics::with_phase(phase, || {
                    for _ in 0..reps {
                        let _ = Int::from(value) * Int::from(value);
                    }
                });
                // After the scope the thread is back on its default phase.
                assert_eq!(metrics::current_phase(), Phase::Other);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let d = metrics::snapshot() - before;
    for &(phase, value, reps) in &assignments {
        assert_eq!(d.phase(phase).mul_count, reps as u64, "{phase:?} count");
        assert_eq!(
            d.phase(phase).mul_bits,
            reps as u64 * mul_bits(value, value),
            "{phase:?} bits"
        );
    }
}

#[test]
fn nested_scopes_on_many_threads_restore_and_attribute() {
    let before = metrics::snapshot();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                metrics::with_phase(Phase::PreInterval, || {
                    let _ = Int::from(3u64) * Int::from(3u64);
                    metrics::with_phase(Phase::Sort, || {
                        let _ = Int::from(3u64) * Int::from(3u64);
                    });
                    assert_eq!(metrics::current_phase(), Phase::PreInterval);
                    let _ = Int::from(3u64) * Int::from(3u64);
                });
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let d = metrics::snapshot() - before;
    assert_eq!(d.phase(Phase::PreInterval).mul_count, 8);
    assert_eq!(d.phase(Phase::Sort).mul_count, 4);
    assert_eq!(d.phase(Phase::PreInterval).mul_bits, 8 * 4);
    assert_eq!(d.phase(Phase::Sort).mul_bits, 4 * 4);
}

#[test]
fn snapshot_subtraction_is_exact_across_thread_churn() {
    // Threads that exit after recording must stay visible in later
    // snapshots (the registry owns the counters), or subtraction around
    // a region would under-count.
    let before = metrics::snapshot();
    std::thread::spawn(|| {
        metrics::with_phase(Phase::Baseline, || {
            let _ = Int::from(u64::MAX) * Int::from(u64::MAX);
        });
    })
    .join()
    .unwrap();
    let mid = metrics::snapshot();
    std::thread::spawn(|| {
        metrics::with_phase(Phase::Baseline, || {
            let _ = Int::from(u64::MAX) * Int::from(u64::MAX);
            let _ = Int::from(u64::MAX) / Int::from(3u64);
        });
    })
    .join()
    .unwrap();
    let after = metrics::snapshot();

    assert_eq!((mid - before).phase(Phase::Baseline).mul_count, 1);
    let d = after - mid;
    assert_eq!(d.phase(Phase::Baseline).mul_count, 1);
    assert_eq!(d.phase(Phase::Baseline).div_count, 1);
    assert_eq!(d.phase(Phase::Baseline).mul_bits, 64 * 64);
    // Totals compose exactly: (after − before) = (after − mid) + (mid − before).
    let whole = (after - before).phase(Phase::Baseline);
    let parts = (after - mid).phase(Phase::Baseline) + (mid - before).phase(Phase::Baseline);
    assert_eq!(whole, parts);
}
