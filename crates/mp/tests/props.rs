//! Property-based tests for the multiprecision integer substrate.
//!
//! The strategy generates integers of up to ~8 limbs from raw byte vectors
//! so carries, borrows, and Algorithm D's rare branches get exercised, and
//! cross-checks against `i128` arithmetic on the small end.

use proptest::prelude::*;
use rr_mp::gcd::{gcd, lcm};
use rr_mp::Int;

/// An arbitrary `Int` with up to `limbs` limbs of magnitude.
fn arb_int(limbs: usize) -> impl Strategy<Value = Int> {
    (
        any::<bool>(),
        prop::collection::vec(any::<u64>(), 0..=limbs),
        // With some probability force extreme limbs to stress carry chains.
        prop::collection::vec(prop::sample::select(vec![0u64, 1, u64::MAX, u64::MAX - 1]), 0..=limbs),
        any::<bool>(),
    )
        .prop_map(|(neg, random, extreme, pick_extreme)| {
            let mag = if pick_extreme { extreme } else { random };
            let sign = if neg { rr_mp::Sign::Negative } else { rr_mp::Sign::Positive };
            Int::from_sign_mag(sign, mag)
        })
}

fn arb_nonzero(limbs: usize) -> impl Strategy<Value = Int> {
    arb_int(limbs).prop_filter("nonzero", |x| !x.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_commutative(a in arb_int(8), b in arb_int(8)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in arb_int(8), b in arb_int(8), c in arb_int(8)) {
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn additive_inverse(a in arb_int(8)) {
        prop_assert!((&a + (-&a)).is_zero());
        prop_assert_eq!(&a - &a, Int::zero());
    }

    #[test]
    fn mul_commutative(a in arb_int(6), b in arb_int(6)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associative(a in arb_int(4), b in arb_int(4), c in arb_int(4)) {
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
    }

    #[test]
    fn mul_distributes(a in arb_int(5), b in arb_int(5), c in arb_int(5)) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn mul_identity_and_zero(a in arb_int(8)) {
        prop_assert_eq!(&a * Int::one(), a.clone());
        prop_assert!((&a * Int::zero()).is_zero());
    }

    #[test]
    fn small_ops_match_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Int::from(a), Int::from(b));
        prop_assert_eq!(&ia + &ib, Int::from(a as i128 + b as i128));
        prop_assert_eq!(&ia - &ib, Int::from(a as i128 - b as i128));
        prop_assert_eq!(&ia * &ib, Int::from(a as i128 * b as i128));
        if b != 0 {
            prop_assert_eq!(&ia / &ib, Int::from(a as i128 / b as i128));
            prop_assert_eq!(&ia % &ib, Int::from(a as i128 % b as i128));
        }
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn div_rem_invariant(a in arb_int(8), b in arb_nonzero(5)) {
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.cmp_abs(&b) == std::cmp::Ordering::Less);
        // sign(r) == sign(a) or r == 0 (truncating division)
        prop_assert!(r.is_zero() || r.signum() == a.signum());
    }

    #[test]
    fn mul_then_div_roundtrips(a in arb_int(6), b in arb_nonzero(6)) {
        let p = &a * &b;
        prop_assert_eq!(p.div_exact(&b), a);
    }

    #[test]
    fn floor_le_trunc_le_ceil(a in arb_int(6), b in arb_nonzero(4)) {
        let fl = a.div_floor(&b);
        let ce = a.div_ceil(&b);
        let tr = &a / &b;
        prop_assert!(fl <= tr && tr <= ce);
        // floor*b <= a < (floor+1)*b for positive b (mirrored for negative)
        let lo = &fl * &b;
        let hi = (&fl + Int::one()) * &b;
        if b.is_positive() {
            prop_assert!(lo <= a && a < hi);
        } else {
            prop_assert!(hi < a.clone() + Int::one() && a <= lo);
        }
        prop_assert!((&ce - &fl) <= Int::one());
    }

    #[test]
    fn shifts_are_pow2_division(a in arb_int(6), k in 0u64..200) {
        let p = Int::pow2(k);
        prop_assert_eq!(a.shr_floor(k), a.div_floor(&p));
        prop_assert_eq!(a.shr_ceil(k), a.div_ceil(&p));
        prop_assert_eq!(&a << k, &a * &p);
        prop_assert_eq!((&a << k) >> k, a.clone());
    }

    #[test]
    fn bit_len_bounds(a in arb_nonzero(8)) {
        let bits = a.bit_len();
        // 2^(bits-1) <= |a| < 2^bits
        prop_assert!(a.abs() >= Int::pow2(bits - 1));
        prop_assert!(a.abs() < Int::pow2(bits));
    }

    #[test]
    fn pow_agrees_with_repeated_mul(a in arb_int(2), e in 0u32..8) {
        let mut expect = Int::one();
        for _ in 0..e {
            expect *= &a;
        }
        prop_assert_eq!(a.pow(e), expect);
    }

    #[test]
    fn gcd_divides_and_bezout_free_properties(a in arb_int(5), b in arb_int(5)) {
        let g = gcd(&a, &b);
        if a.is_zero() && b.is_zero() {
            prop_assert!(g.is_zero());
        } else {
            prop_assert!(g.is_positive());
            prop_assert!(a.is_zero() || a.divisible_by(&g));
            prop_assert!(b.is_zero() || b.divisible_by(&g));
            // gcd is maximal: gcd(a/g, b/g) == 1
            if !a.is_zero() && !b.is_zero() {
                let (a1, b1) = (a.div_exact(&g), b.div_exact(&g));
                prop_assert!(gcd(&a1, &b1).is_one());
            }
        }
    }

    #[test]
    fn gcd_lcm_product(a in arb_nonzero(4), b in arb_nonzero(4)) {
        let g = gcd(&a, &b);
        let l = lcm(&a, &b);
        prop_assert_eq!(g * l, (&a * &b).abs());
    }

    #[test]
    fn decimal_roundtrip(a in arb_int(8)) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Int>().unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_int(8)) {
        let s = format!("{a:x}");
        prop_assert_eq!(Int::from_str_radix(&s, 16).unwrap(), a);
    }

    #[test]
    fn ordering_total_and_consistent_with_sub(a in arb_int(6), b in arb_int(6)) {
        let d = &a - &b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(d.is_negative()),
            std::cmp::Ordering::Equal => prop_assert!(d.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(d.is_positive()),
        }
    }

    #[test]
    fn neg_involution_and_abs(a in arb_int(8)) {
        prop_assert_eq!(-(-&a), a.clone());
        prop_assert!(!a.abs().is_negative());
        prop_assert_eq!(a.abs(), (-&a).abs());
    }
}
