//! Differential tests of the two multiplication backends.
//!
//! The `Fast` (Karatsuba) kernel must agree **bit-for-bit** with the
//! paper-faithful schoolbook kernel on every input. The properties here
//! drive both kernels over tens of thousands of generated magnitudes
//! spanning the shapes where split-and-recombine arithmetic breaks:
//! limb-boundary lengths, heavily unbalanced operands, zero/one, and
//! near-overflow (all-ones) limbs that maximize internal carries. Deep
//! recursion is forced by calling `mul_with_threshold` with tiny
//! thresholds, so even small operands exercise several Karatsuba levels.
//!
//! This file also carries the edge-case property coverage for
//! `nat::mul_limb`, `nat::mul::square`, and `nat::mul_normalizing`.

use proptest::prelude::*;
use rr_mp::nat::{self, kmul, mul};

type Mag = Vec<u64>;

/// Limb values that maximize/clear carries.
fn edge_limb() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![0u64, 1, 2, 3, u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1])
}

/// A magnitude of up to `max_limbs` limbs: random limbs, edge-value
/// limbs, or an all-ones (near-overflow) run, with lengths biased to the
/// split boundaries of the recursion.
fn arb_mag(max_limbs: usize) -> impl Strategy<Value = Mag> {
    let boundary_len = prop::sample::select(vec![
        0usize,
        1,
        2,
        3,
        4,
        7,
        8,
        9,
        15,
        16,
        17,
        23,
        24,
        25,
        31,
        32,
        33,
    ]);
    (
        prop::collection::vec(any::<u64>(), 0..=max_limbs),
        prop::collection::vec(edge_limb(), 0..=max_limbs),
        boundary_len,
        0..4u8,
    )
        .prop_map(move |(random, edges, blen, shape)| match shape {
            0 => random,
            1 => edges,
            2 => vec![u64::MAX; blen.min(max_limbs)],
            _ => {
                let mut v = random;
                v.truncate(blen.min(max_limbs));
                v
            }
        })
}

fn schoolbook(a: &[u64], b: &[u64]) -> Mag {
    mul::mul(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn fast_matches_schoolbook_at_default_threshold(
        a in arb_mag(40),
        b in arb_mag(40),
    ) {
        prop_assert_eq!(kmul::mul(&a, &b), schoolbook(&a, &b));
    }

    #[test]
    fn fast_matches_schoolbook_under_forced_recursion(
        a in arb_mag(24),
        b in arb_mag(24),
        threshold in 2usize..6,
    ) {
        prop_assert_eq!(
            kmul::mul_with_threshold(&a, &b, threshold),
            schoolbook(&a, &b)
        );
    }

    #[test]
    fn fast_square_matches_schoolbook(
        a in arb_mag(40),
        threshold in 2usize..8,
    ) {
        prop_assert_eq!(kmul::square(&a), mul::square(&a));
        prop_assert_eq!(kmul::sqr_with_threshold(&a, threshold), schoolbook(&a, &a));
    }

    #[test]
    fn fast_handles_unbalanced_operands(
        long in arb_mag(96),
        short in arb_mag(6),
        threshold in 2usize..5,
    ) {
        // Chunked path (and its commutation) — the shape the balanced
        // split alone cannot reach.
        prop_assert_eq!(
            kmul::mul_with_threshold(&long, &short, threshold),
            schoolbook(&long, &short)
        );
        prop_assert_eq!(
            kmul::mul_with_threshold(&short, &long, threshold),
            schoolbook(&long, &short)
        );
    }

    #[test]
    fn fast_near_overflow_carry_chains(len_a in 1usize..48, len_b in 1usize..48) {
        // (2^(64a) − 1)(2^(64b) − 1) stresses every carry in the
        // recombination adds.
        let a = vec![u64::MAX; len_a];
        let b = vec![u64::MAX; len_b];
        prop_assert_eq!(kmul::mul_with_threshold(&a, &b, 2), schoolbook(&a, &b));
    }
}

// Satellite coverage: mul_limb / square / mul_normalizing edge cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn mul_limb_matches_general_mul(a in arb_mag(12), m in edge_limb()) {
        // mul_limb's contract (like the rest of `nat`) is normalized input.
        let a = nat::normalized(a);
        let as_mag: Mag = if m == 0 { vec![] } else { vec![m] };
        prop_assert_eq!(mul::mul_limb(&a, m), schoolbook(&a, &as_mag));
    }

    #[test]
    fn mul_limb_zero_and_one(a in arb_mag(12)) {
        let a = nat::normalized(a);
        prop_assert_eq!(mul::mul_limb(&a, 0), Mag::new());
        prop_assert_eq!(mul::mul_limb(&a, 1), a.clone());
        prop_assert_eq!(mul::mul_limb(&[], 12345), Mag::new());
    }

    #[test]
    fn square_is_aliased_mul(a in arb_mag(12)) {
        prop_assert_eq!(mul::square(&a), schoolbook(&a, &a));
        let bits = nat::bit_len(&nat::normalized(a.clone()));
        let sq_bits = nat::bit_len(&mul::square(&a));
        // ‖a²‖ is 2‖a‖ or 2‖a‖ − 1 for nonzero a.
        if bits > 0 {
            prop_assert!(sq_bits == 2 * bits || sq_bits == 2 * bits - 1);
        } else {
            prop_assert_eq!(sq_bits, 0);
        }
    }

    #[test]
    fn mul_normalizing_accepts_denormalized(
        a in arb_mag(8),
        b in arb_mag(8),
        pad_a in 0usize..4,
        pad_b in 0usize..4,
    ) {
        let mut ap = a.clone();
        ap.resize(ap.len() + pad_a, 0);
        let mut bp = b.clone();
        bp.resize(bp.len() + pad_b, 0);
        prop_assert_eq!(mul::mul_normalizing(ap, bp), schoolbook(&a, &b));
    }

    #[test]
    fn mul_normalizing_single_limb_and_zero(x in any::<u64>(), pad in 0usize..3) {
        let padded = |v: u64| {
            let mut m = if v == 0 { vec![] } else { vec![v] };
            m.resize(m.len() + pad, 0);
            m
        };
        prop_assert_eq!(mul::mul_normalizing(padded(x), padded(0)), Mag::new());
        prop_assert_eq!(
            mul::mul_normalizing(padded(x), padded(1)),
            if x == 0 { vec![] } else { vec![x] }
        );
    }
}

/// `mul_normalizing` dispatches through the process-wide backend; under
/// `Fast` it must still produce schoolbook-identical (normalized) limbs.
/// Kept as one plain test so the global backend flip is scoped and
/// restored deterministically.
#[test]
fn mul_normalizing_dispatches_to_fast_backend() {
    let a: Mag = (0..33u64).map(|i| u64::MAX - i * i).chain([0, 0]).collect();
    let b: Mag = (0..29u64).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i | 1)).collect();
    let expect = mul::mul(&nat::normalized(a.clone()), &nat::normalized(b.clone()));

    let prev = rr_mp::set_mul_backend(rr_mp::MulBackend::Fast);
    let fast = mul::mul_normalizing(a.clone(), b.clone());
    rr_mp::set_mul_backend(prev);
    assert_eq!(fast, expect);

    let school = mul::mul_normalizing(a, b);
    assert_eq!(school, expect);
}
