//! Targeted stress tests for Knuth Algorithm D's hard paths: the trial
//! quotient-digit overestimate (D3's correction loop) and the rare
//! add-back (D6), which random operands almost never reach.

use proptest::prelude::*;
use rr_mp::{Int, Sign};

fn from_limbs(limbs: &[u64]) -> Int {
    Int::from_sign_mag(Sign::Positive, limbs.to_vec())
}

fn check_division(u: &Int, v: &Int) {
    let (q, r) = u.div_rem(v);
    assert_eq!(&q * v + &r, u.clone(), "u = q·v + r");
    assert!(r.cmp_abs(v) == std::cmp::Ordering::Less, "|r| < |v|");
    assert!(!r.is_negative());
}

#[test]
fn qhat_overestimate_patterns() {
    // Divisors with maximal top limbs force the D3 correction loop.
    let patterns: &[(&[u64], &[u64])] = &[
        // u = [0, 0, top], v = [max, max]: qhat initially too big
        (&[0, 0, u64::MAX - 1], &[u64::MAX, u64::MAX]),
        (&[0, 0, 1 << 63], &[u64::MAX, 1 << 63]),
        // classic add-back trigger (Hacker's Delight style)
        (&[0, u64::MAX - 1, u64::MAX >> 1], &[u64::MAX, u64::MAX >> 1]),
        (&[3, 0, 0, 1], &[1, 0, 1]),
        // dividend top window equals divisor prefix
        (&[u64::MAX, u64::MAX, u64::MAX], &[u64::MAX, u64::MAX]),
        (&[0, 0, 0, 1], &[1, 1]),
        (&[5, 0, 0, 0, 0, 1 << 62], &[7, 0, 1 << 62]),
    ];
    for (ul, vl) in patterns {
        let u = from_limbs(ul);
        let v = from_limbs(vl);
        check_division(&u, &v);
    }
}

#[test]
fn divisor_minimal_top_bit_after_normalization() {
    // Divisors whose top limb is 1 (maximal normalizing shift).
    for extra in 0..4usize {
        let mut vl = vec![u64::MAX; extra + 1];
        vl.push(1);
        let v = from_limbs(&vl);
        let u = &v * &v + Int::from(12345u64);
        check_division(&u, &v);
    }
}

#[test]
fn power_of_two_boundaries() {
    for a_bits in [63u64, 64, 65, 127, 128, 129, 191, 192] {
        for b_bits in [1u64, 63, 64, 65, 127] {
            if b_bits > a_bits {
                continue;
            }
            for da in [-1i64, 0, 1] {
                for db in [-1i64, 0, 1] {
                    let a = Int::pow2(a_bits) + Int::from(da);
                    let b = Int::pow2(b_bits) + Int::from(db);
                    if !b.is_zero() && !a.is_negative() && b.is_positive() {
                        check_division(&a, &b);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Operands biased toward extreme limbs, which is where Algorithm D's
    /// corrections live.
    #[test]
    fn extreme_limb_division(
        u_limbs in prop::collection::vec(
            prop::sample::select(vec![0u64, 1, 2, (1 << 63) - 1, 1 << 63, u64::MAX - 1, u64::MAX]),
            1..7,
        ),
        v_limbs in prop::collection::vec(
            prop::sample::select(vec![0u64, 1, (1 << 63) - 1, 1 << 63, u64::MAX]),
            1..4,
        ),
    ) {
        let u = from_limbs(&u_limbs);
        let v = from_limbs(&v_limbs);
        prop_assume!(!v.is_zero());
        check_division(&u, &v);
    }

    /// Quotient-of-one-limb-difference divisions (m = 1 in Algorithm D,
    /// a single trial digit — the correction-heavy configuration).
    #[test]
    fn single_digit_quotients(
        v_limbs in prop::collection::vec(any::<u64>(), 2..5),
        q in any::<u64>(),
        r_seed in any::<u64>(),
    ) {
        let v = from_limbs(&v_limbs);
        prop_assume!(!v.is_zero());
        let q_int = Int::from(q);
        // r < v via modulo-style construction
        let r = Int::from(r_seed) % &v;
        let r = if r.is_negative() { -r } else { r };
        let u = &q_int * &v + &r;
        let (qq, rr) = u.div_rem(&v);
        prop_assert_eq!(qq, q_int);
        prop_assert_eq!(rr, r);
    }
}
