//! Differential tests of the fork-join multiplication kernels.
//!
//! The `RR_PAR_MUL` splitter ([`rr_mp::nat::parmul`]) must agree
//! **bit-for-bit** with the serial Karatsuba kernel (itself held to the
//! schoolbook reference by `kernel_diff.rs`) on every input — inline
//! (no ambient pool scope), on a real multi-worker pool scope with
//! subtasks actually claimed by other workers, and on a single-worker
//! scope where every join must degrade to inline execution. The
//! property suite drives ~15k generated cases across the shapes that
//! break split-and-recombine arithmetic: lengths straddling
//! [`PAR_MUL_THRESHOLD`] and the tiled-path boundary at twice it,
//! all-ones carry chains, sparse (denormalized-half) operands, aliased
//! operands, and poisoned destination/scratch buffers.

use proptest::prelude::*;
use rr_mp::nat::parmul::{self, PAR_MUL_THRESHOLD};
use rr_mp::nat::kmul;
use rr_mp::{MulBackend, ParMulMode, SolveCtx};

type Mag = Vec<u64>;

const T: usize = PAR_MUL_THRESHOLD;

/// Operand lengths biased to the splitter's decision boundaries: the
/// engage threshold `T`, the balanced/tiled boundary at `2·short`, and
/// a few deep-recursion sizes.
fn boundary_len() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![
        0usize,
        1,
        7,
        T / 2,
        T - 1,
        T,
        T + 1,
        T + T / 2,
        2 * T - 1,
        2 * T,
        2 * T + 1,
        3 * T + 5,
        4 * T + 3,
    ])
}

/// A magnitude of the given length in one of the carry-stressing
/// shapes: random limbs, all-ones (maximal carries), sparse (mostly
/// zero — produces denormalized split halves), or top-heavy.
fn arb_mag() -> impl Strategy<Value = Mag> {
    (boundary_len(), any::<u64>(), 0..4u8).prop_map(|(len, seed, shape)| {
        let mut x = seed | 1;
        let mut next = move || {
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^ (x >> 27)
        };
        (0..len)
            .map(|i| match shape {
                0 => next(),
                1 => u64::MAX,
                2 => {
                    if i % 97 == 0 {
                        next()
                    } else {
                        0
                    }
                }
                _ => {
                    if i >= len / 2 {
                        next()
                    } else {
                        0
                    }
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// No ambient pool scope: every join runs inline and the parallel
    /// kernel is plain recursive Karatsuba.
    #[test]
    fn parmul_matches_serial_inline(a in arb_mag(), b in arb_mag()) {
        let mut got = Vec::new();
        parmul::mul_into(&a, &b, &mut got);
        prop_assert_eq!(got, kmul::mul(&a, &b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3072))]

    #[test]
    fn parmul_square_matches_serial(a in arb_mag()) {
        let mut got = Vec::new();
        parmul::square_into(&a, &mut got);
        prop_assert_eq!(&got, &kmul::square(&a));

        // Aliased operands: multiplying a magnitude by itself through
        // the mul path must agree with the square path.
        let mut via_mul = Vec::new();
        parmul::mul_into(&a, &a, &mut via_mul);
        prop_assert_eq!(via_mul, got);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3072))]

    /// Poisoned destinations and a disabled arena: the kernels must
    /// fully overwrite whatever garbage the destination holds, and must
    /// not depend on scratch reuse (with the arena gated off every
    /// take() is a fresh allocation).
    #[test]
    fn poisoned_buffers_and_cold_arena(a in arb_mag(), b in arb_mag(), poison in any::<u64>()) {
        let ctx = SolveCtx::new(MulBackend::Fast)
            .with_par_mul(ParMulMode::On)
            .with_arena(false);
        let expect = kmul::mul(&a, &b);
        ctx.run(|| {
            let mut out = vec![poison | 1; a.len() + b.len() + 7];
            parmul::mul_into(&a, &b, &mut out);
            prop_assert_eq!(&out, &expect);
            Ok(())
        })?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// The dispatch layer: `nat::mul_auto_into` under a `Fast` context
    /// routes through the splitter when the mode says so and must stay
    /// bit-identical to the serial backend either way.
    #[test]
    fn dispatch_is_mode_invariant(a in arb_mag(), b in arb_mag()) {
        let expect = kmul::mul(&a, &b);
        for mode in [ParMulMode::Off, ParMulMode::On, ParMulMode::Auto] {
            let ctx = SolveCtx::new(MulBackend::Fast).with_par_mul(mode);
            ctx.run(|| {
                let mut out = Vec::new();
                rr_mp::nat::mul_auto_into(&a, &b, &mut out);
                prop_assert_eq!(&out, &expect);
                Ok(())
            })?;
        }
    }
}

/// Deterministic operand for the pool tests: `len` pseudo-random limbs.
fn det_mag(len: usize, seed: u64) -> Mag {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^ (x >> 27)
        })
        .collect()
}

/// A real 8-worker pool scope: one task computes large products while
/// the other workers idle, so join subtasks are actually claimed and
/// executed remotely. Results must match the serial kernel and the
/// session must observe the splits (and, with idle capacity on tap,
/// remote executions).
#[test]
fn pool_scope_products_are_bit_identical_and_stolen() {
    let sizes = [(8 * T, 8 * T - 3), (5 * T, 2 * T + 1), (9 * T + 7, T)];
    let inputs: Vec<(Mag, Mag)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &(la, lb))| (det_mag(la, i as u64 + 1), det_mag(lb, 100 + i as u64)))
        .collect();
    let expect: Vec<Mag> = inputs.iter().map(|(a, b)| kmul::mul(a, b)).collect();

    let ctx = SolveCtx::new(MulBackend::Fast).with_par_mul(ParMulMode::On);
    let results: Vec<std::sync::Mutex<Mag>> =
        inputs.iter().map(|_| std::sync::Mutex::new(Vec::new())).collect();
    {
        let (ctx, inputs, results) = (&ctx, &inputs, &results);
        rr_sched::run(8, move |scope| {
            scope.spawn(move |_| {
                ctx.run(|| {
                    for ((a, b), slot) in inputs.iter().zip(results) {
                        let mut out = Vec::new();
                        parmul::mul_into(a, b, &mut out);
                        *slot.lock().unwrap() = out;
                    }
                });
            });
        });
    }
    for (i, (slot, want)) in results.iter().zip(&expect).enumerate() {
        assert_eq!(&*slot.lock().unwrap(), want, "product {i}");
    }
    let s = ctx.parmul_stats();
    assert_eq!(s.products, sizes.len() as u64);
    assert!(s.tasks > 0, "large products split: {s:?}");
    assert!(
        s.steals > 0,
        "with 7 idle workers some subtasks run remotely: {s:?}"
    );
}

/// Single-worker scope (`RR_POOL_THREADS=1` shape): the fork-join layer
/// must degrade to inline execution — correct limbs, zero remote
/// executions — instead of deadlocking on a pool that can never claim a
/// subtask.
#[test]
fn single_worker_scope_degrades_to_inline() {
    let a = det_mag(4 * T, 7);
    let b = det_mag(3 * T + 11, 8);
    let expect = kmul::mul(&a, &b);

    let ctx = SolveCtx::new(MulBackend::Fast).with_par_mul(ParMulMode::On);
    let out = std::sync::Mutex::new(Vec::new());
    {
        let (ctx, a, b, out) = (&ctx, &a, &b, &out);
        rr_sched::run(1, move |scope| {
            scope.spawn(move |_| {
                ctx.run(|| {
                    let mut p = Vec::new();
                    parmul::mul_into(a, b, &mut p);
                    *out.lock().unwrap() = p;
                });
            });
        });
    }
    assert_eq!(&*out.lock().unwrap(), &expect);
    let s = ctx.parmul_stats();
    assert_eq!(s.steals, 0, "cap-1 scope never executes subtasks remotely");
}

/// Auto mode outside any pool scope sees no idle capacity and must not
/// engage the splitter at all.
#[test]
fn auto_without_scope_does_not_split() {
    let a = det_mag(4 * T, 9);
    let ctx = SolveCtx::new(MulBackend::Fast).with_par_mul(ParMulMode::Auto);
    ctx.run(|| {
        let mut out = Vec::new();
        rr_mp::nat::mul_auto_into(&a, &a, &mut out);
        assert_eq!(out, kmul::mul(&a, &a));
    });
    assert_eq!(ctx.parmul_stats().products, 0, "no scope, no split");
}

/// Saturation: many concurrent joining tasks on a small pool must drain
/// without deadlock and stay bit-identical (subtasks that nobody claims
/// are retracted and run inline by their submitters).
#[test]
fn saturated_pool_drains_correctly() {
    const TASKS: usize = 24;
    let a = det_mag(2 * T + 5, 11);
    let b = det_mag(2 * T - 9, 12);
    let expect = kmul::mul(&a, &b);

    let ctx = SolveCtx::new(MulBackend::Fast).with_par_mul(ParMulMode::On);
    let oks = std::sync::atomic::AtomicUsize::new(0);
    {
        let (ctx, a, b, expect, oks) = (&ctx, &a, &b, &expect, &oks);
        rr_sched::run(2, move |scope| {
            for _ in 0..TASKS {
                scope.spawn(move |_| {
                    ctx.run(|| {
                        let mut out = Vec::new();
                        parmul::mul_into(a, b, &mut out);
                        if out == *expect {
                            oks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    });
                });
            }
        });
    }
    assert_eq!(oks.load(std::sync::atomic::Ordering::Relaxed), TASKS);
    assert_eq!(ctx.parmul_stats().products, TASKS as u64);
}
