//! Always-on process-wide metrics: counters, gauges and base-2
//! log-bucketed histograms, cheap enough to stay hot in production.
//!
//! The per-solve [`Recorder`](crate::Recorder) answers "what happened
//! inside *one* solve"; this registry answers the complementary fleet
//! question — "what are *all* solves doing over time" — without any
//! recorder installed: per-phase latency percentiles, backend-tagged
//! throughput, allocation and cancellation rates.
//!
//! ## Design
//!
//! * **Per-thread shards, merged on scrape** — the same sharding
//!   discipline as [`crate::alloc`]. Each `(metric, thread)` pair owns a
//!   private cache-line of atomics; a record is a thread-local indexed
//!   lookup plus a handful of `Relaxed` `fetch_add`s, with no shared
//!   cache line ever contended. Scrapes ([`snapshot`],
//!   [`render_prometheus`]) take the registry lock and sum across
//!   shards; the hot path never takes a lock.
//! * **Base-2 log buckets.** Histograms bucket by bit length
//!   (`64 - leading_zeros`), giving 65 buckets covering the full `u64`
//!   range — the right shape for latencies and operand bit sizes that
//!   span many orders of magnitude. Percentiles are estimated by
//!   linear interpolation inside the crossing bucket and clamped to the
//!   exact observed maximum (tracked via `fetch_max`).
//! * **Exactness across thread churn.** A shard registered by a thread
//!   is owned by the registry (`Arc`), so counts survive thread exit.
//!   [`release_thread`] — registered as a pool idle hook — folds a
//!   parked worker's shards into per-metric *retired* totals under the
//!   same lock a scrape takes, so a scrape racing a drain never double
//!   counts or loses a shard.
//! * **Observe, never steer.** Nothing in this module feeds back into
//!   the solver: cost-model outputs are byte-identical with metrics hot,
//!   cold, or disabled (`RR_METRICS=off`, read once at first use).
//!
//! ```
//! use std::sync::LazyLock;
//! use rr_obs::metrics::{Counter, Histogram};
//!
//! static SOLVES: LazyLock<Counter> =
//!     rr_obs::register_metric!(counter, "doc_solves_total", "Completed solves");
//! static WALL: LazyLock<Histogram> =
//!     rr_obs::register_metric!(histogram, "doc_solve_wall_ns", "Solve wall time (ns)");
//!
//! SOLVES.inc();
//! WALL.record(1_234);
//! let snap = rr_obs::metrics::snapshot();
//! assert!(snap.counter("doc_solves_total").unwrap() >= 1);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of base-2 log buckets: bucket 0 holds the value `0`, bucket
/// `b` (1 ≤ b ≤ 64) holds values with bit length `b`, i.e. the range
/// `[2^(b-1), 2^b - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a recorded value (its bit length).
#[inline]
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `b`.
fn bucket_range(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// What a registered metric is; fixed at registration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// One thread's private slice of a metric: a few atomics only the
/// owning thread writes. Single-writer is a hard invariant (the shard
/// lives in the owner's TLS slot and [`release_thread`] runs on the
/// owning thread), so updates are plain load+store pairs rather than
/// `lock`-prefixed RMWs — the difference between ~2 ns and ~25 ns per
/// histogram record at per-`Int`-op call rates. Scrapes read the same
/// atomics `Relaxed` from other threads and tolerate being a few
/// operations behind; totals are exact once the writer quiesces.
struct Shard {
    /// Histogram buckets (empty for counters/gauges).
    buckets: Box<[AtomicU64]>,
    /// Counter value, or histogram sample count.
    count: AtomicU64,
    /// Histogram sum of recorded values (wrapping).
    sum: AtomicU64,
    /// Histogram maximum recorded value.
    max: AtomicU64,
}

/// Single-writer increment: safe only from the shard's owning thread.
#[inline]
fn bump(cell: &AtomicU64, d: u64) {
    cell.store(cell.load(Relaxed).wrapping_add(d), Relaxed);
}

impl Shard {
    fn new(kind: Kind) -> Arc<Self> {
        let buckets: Box<[AtomicU64]> = match kind {
            Kind::Histogram => (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            _ => Box::from([]),
        };
        Arc::new(Shard {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        })
    }
}

/// Folded totals from shards whose owning thread drained or exited.
#[derive(Default)]
struct Retired {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Retired {
    fn fold(&mut self, shard: &Shard) {
        if self.buckets.len() < shard.buckets.len() {
            self.buckets.resize(shard.buckets.len(), 0);
        }
        for (acc, b) in self.buckets.iter_mut().zip(&shard.buckets) {
            *acc = acc.wrapping_add(b.load(Relaxed));
        }
        self.count = self.count.wrapping_add(shard.count.load(Relaxed));
        self.sum = self.sum.wrapping_add(shard.sum.load(Relaxed));
        self.max = self.max.max(shard.max.load(Relaxed));
    }
}

/// A registered metric: descriptor plus its live shards and retired
/// totals. Label keys and values are `'static` by construction — label
/// sets are typed enumerations (phase, backend, outcome), not free-form
/// strings, so registration cannot explode cardinality at runtime.
struct Metric {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, &'static str)>,
    kind: Kind,
    shards: Vec<Arc<Shard>>,
    retired: Retired,
    /// Gauge cell (gauges are set, not accumulated, so they are a
    /// single shared atomic rather than sharded).
    gauge: Arc<AtomicI64>,
}

static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread shard cache, indexed by metric id. Entry `None` means
    /// this thread has not recorded into that metric since the last
    /// [`release_thread`].
    static TLS_SHARDS: RefCell<Vec<Option<Arc<Shard>>>> = const { RefCell::new(Vec::new()) };
}

/// Whether recording is enabled. `RR_METRICS=off|0|false` disables the
/// record paths (registration and scraping still work, reporting
/// zeros); read once at first use.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("RR_METRICS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

fn register(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &'static str)],
    kind: Kind,
) -> u32 {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(id) = reg
        .iter()
        .position(|m| m.name == name && m.labels == labels)
    {
        assert_eq!(
            reg[id].kind, kind,
            "metric {name} re-registered with a different kind"
        );
        return id as u32;
    }
    reg.push(Metric {
        name,
        help,
        labels: labels.to_vec(),
        kind,
        shards: Vec::new(),
        retired: Retired::default(),
        gauge: Arc::new(AtomicI64::new(0)),
    });
    (reg.len() - 1) as u32
}

/// Registers (or looks up) a labeled monotone counter. Registering the
/// same `(name, labels)` pair twice returns the same series.
pub fn counter_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &'static str)],
) -> Counter {
    Counter {
        id: register(name, help, labels, Kind::Counter),
    }
}

/// Registers (or looks up) an unlabeled monotone counter.
pub fn counter(name: &'static str, help: &'static str) -> Counter {
    counter_with(name, help, &[])
}

/// Registers (or looks up) a labeled base-2 log-bucketed histogram.
pub fn histogram_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &'static str)],
) -> Histogram {
    Histogram {
        id: register(name, help, labels, Kind::Histogram),
    }
}

/// Registers (or looks up) an unlabeled histogram.
pub fn histogram(name: &'static str, help: &'static str) -> Histogram {
    histogram_with(name, help, &[])
}

/// Registers (or looks up) a labeled gauge.
pub fn gauge_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &'static str)],
) -> Gauge {
    let id = register(name, help, labels, Kind::Gauge);
    let cell = REGISTRY.lock().unwrap()[id as usize].gauge.clone();
    Gauge { cell }
}

/// Registers (or looks up) an unlabeled gauge.
pub fn gauge(name: &'static str, help: &'static str) -> Gauge {
    gauge_with(name, help, &[])
}

/// Declares a metric handle for a `static LazyLock` — the idiomatic
/// registration form. The metric registers on first use:
///
/// ```
/// use std::sync::LazyLock;
/// use rr_obs::metrics::Counter;
///
/// static CANCELLED: LazyLock<Counter> = rr_obs::register_metric!(
///     counter, "doc_cancelled_total", "Cancelled solves", "outcome" => "cancelled");
/// CANCELLED.inc();
/// ```
#[macro_export]
macro_rules! register_metric {
    (counter, $name:expr, $help:expr $(, $lk:expr => $lv:expr)* $(,)?) => {
        ::std::sync::LazyLock::new(|| {
            $crate::metrics::counter_with($name, $help, &[$(($lk, $lv)),*])
        })
    };
    (gauge, $name:expr, $help:expr $(, $lk:expr => $lv:expr)* $(,)?) => {
        ::std::sync::LazyLock::new(|| {
            $crate::metrics::gauge_with($name, $help, &[$(($lk, $lv)),*])
        })
    };
    (histogram, $name:expr, $help:expr $(, $lk:expr => $lv:expr)* $(,)?) => {
        ::std::sync::LazyLock::new(|| {
            $crate::metrics::histogram_with($name, $help, &[$(($lk, $lv)),*])
        })
    };
}

/// Finds (or creates and registers) the calling thread's shard for
/// metric `id` and applies `f` to it. Returns `None` only during thread
/// teardown when the TLS cache is already destroyed (such records are
/// dropped rather than panicking in a destructor).
#[inline]
fn with_shard<R>(id: u32, kind: Kind, f: impl FnOnce(&Shard) -> R) -> Option<R> {
    TLS_SHARDS
        .try_with(|tls| {
            let mut tls = tls.borrow_mut();
            let i = id as usize;
            if let Some(Some(shard)) = tls.get(i) {
                return f(shard);
            }
            if tls.len() <= i {
                tls.resize(i + 1, None);
            }
            let shard = Shard::new(kind);
            REGISTRY.lock().unwrap()[i].shards.push(shard.clone());
            let out = f(&shard);
            tls[i] = Some(shard);
            out
        })
        .ok()
}

/// A monotone counter handle. Copyable; incrementing is a thread-local
/// indexed lookup plus one `Relaxed` `fetch_add`.
#[derive(Clone, Copy, Debug)]
pub struct Counter {
    id: u32,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(self, n: u64) {
        if !enabled() {
            return;
        }
        with_shard(self.id, Kind::Counter, |s| {
            bump(&s.count, n);
        });
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }
}

/// A gauge handle: an instantaneous level (queue depth, live workers).
/// Set/add go straight to one shared atomic — gauges are low-frequency
/// compared to counters and histograms, and "last write wins" is the
/// semantic a level wants.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.cell.store(v, Relaxed);
        }
    }

    /// Adds `d` (possibly negative) to the gauge.
    #[inline]
    pub fn add(&self, d: i64) {
        if enabled() {
            self.cell.fetch_add(d, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Relaxed)
    }
}

/// A base-2 log-bucketed histogram handle. Recording is four
/// single-writer load+store pairs on thread-private cache lines
/// (bucket, count, sum, max) — a couple of nanoseconds. Call sites
/// hotter than ~10⁷ records/s should still sample (see
/// `rr_mp::metrics`' operand-bit histograms).
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    id: u32,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(self, v: u64) {
        if !enabled() {
            return;
        }
        with_shard(self.id, Kind::Histogram, |s| {
            bump(&s.buckets[bucket_index(v)], 1);
            bump(&s.count, 1);
            bump(&s.sum, v);
            if v > s.max.load(Relaxed) {
                s.max.store(v, Relaxed);
            }
        });
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Folds the calling thread's shards into the registry's retired totals
/// and drops them from the live-shard lists. Registered as a pool idle
/// hook (`rr_sched::set_worker_idle_hook`) so parked workers don't pin
/// per-thread state; safe to call at any time — subsequent records
/// transparently re-register fresh shards. The fold happens under the
/// registry lock, the same lock a scrape takes, so totals stay exact.
pub fn release_thread() {
    let mine: Vec<Option<Arc<Shard>>> = match TLS_SHARDS.try_with(|tls| tls.take()) {
        Ok(v) => v,
        Err(_) => return,
    };
    if mine.iter().all(Option::is_none) {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap();
    for (id, shard) in mine.iter().enumerate() {
        let Some(shard) = shard else { continue };
        let metric = &mut reg[id];
        metric.retired.fold(shard);
        metric.shards.retain(|s| !Arc::ptr_eq(s, shard));
    }
}

/// One counter series in a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct CounterValue {
    /// Metric name.
    pub name: &'static str,
    /// Label set fixed at registration.
    pub labels: Vec<(&'static str, &'static str)>,
    /// Merged total across all threads.
    pub value: u64,
}

/// One gauge series in a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct GaugeValue {
    /// Metric name.
    pub name: &'static str,
    /// Label set fixed at registration.
    pub labels: Vec<(&'static str, &'static str)>,
    /// Last value set.
    pub value: i64,
}

/// One histogram series in a [`MetricsSnapshot`]: merged buckets plus
/// exact count/sum/max.
#[derive(Clone, Debug)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: &'static str,
    /// Label set fixed at registration.
    pub labels: Vec<(&'static str, &'static str)>,
    /// Exact number of samples.
    pub count: u64,
    /// Exact (wrapping) sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Base-2 log buckets (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// Estimated `q`-quantile (0 < q ≤ 1): linear interpolation inside
    /// the bucket where the cumulative count crosses `q·count`, clamped
    /// to the exact observed maximum. With ~65 buckets the estimate is
    /// within a factor of 2 of the true order statistic, which is the
    /// resolution a log-scale latency distribution calls for.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil()).max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if cum >= target {
                let (lo, hi) = bucket_range(b);
                let frac = (target - before) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.min(self.max as f64);
            }
        }
        self.max as f64
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Exact mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value of the label `key`, if registered.
    pub fn label(&self, key: &str) -> Option<&'static str> {
        self.labels.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// A merged point-in-time view of every registered metric, in
/// registration order. Taking a snapshot locks the registry briefly
/// (micro­seconds); it never blocks recording threads.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counter series.
    pub counters: Vec<CounterValue>,
    /// All gauge series.
    pub gauges: Vec<GaugeValue>,
    /// All histogram series.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// Total of the first counter series named `name` summed over all
    /// its label sets (`None` if no such counter is registered).
    pub fn counter(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for c in self.counters.iter().filter(|c| c.name == name) {
            found = true;
            total = total.wrapping_add(c.value);
        }
        found.then_some(total)
    }

    /// All histogram series named `name` (one per label set).
    pub fn histograms_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a HistogramSummary> {
        self.histograms.iter().filter(move |h| h.name == name)
    }
}

/// Takes a merged snapshot of every registered metric: live shards plus
/// retired totals, summed under the registry lock.
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().unwrap();
    let mut snap = MetricsSnapshot::default();
    for m in reg.iter() {
        match m.kind {
            Kind::Counter => {
                let mut v = m.retired.count;
                for s in &m.shards {
                    v = v.wrapping_add(s.count.load(Relaxed));
                }
                snap.counters.push(CounterValue {
                    name: m.name,
                    labels: m.labels.clone(),
                    value: v,
                });
            }
            Kind::Gauge => {
                snap.gauges.push(GaugeValue {
                    name: m.name,
                    labels: m.labels.clone(),
                    value: m.gauge.load(Relaxed),
                });
            }
            Kind::Histogram => {
                let mut buckets = vec![0u64; HIST_BUCKETS];
                let mut count = m.retired.count;
                let mut sum = m.retired.sum;
                let mut max = m.retired.max;
                for (acc, &b) in buckets.iter_mut().zip(m.retired.buckets.iter()) {
                    *acc = b;
                }
                for s in &m.shards {
                    for (acc, b) in buckets.iter_mut().zip(&s.buckets) {
                        *acc = acc.wrapping_add(b.load(Relaxed));
                    }
                    count = count.wrapping_add(s.count.load(Relaxed));
                    sum = sum.wrapping_add(s.sum.load(Relaxed));
                    max = max.max(s.max.load(Relaxed));
                }
                snap.histograms.push(HistogramSummary {
                    name: m.name,
                    labels: m.labels.clone(),
                    count,
                    sum,
                    max,
                    buckets,
                });
            }
        }
    }
    snap
}

fn fmt_labels(out: &mut String, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// Renders the whole registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, all series of a family
/// contiguous, histograms as cumulative `_bucket{le=…}` series plus
/// `_sum`/`_count`. Bucket upper bounds are the inclusive tops of the
/// base-2 buckets (`0, 1, 3, 7, …, 2^b − 1, +Inf`); empty high buckets
/// are elided (the cumulative encoding keeps that lossless).
pub fn render_prometheus() -> String {
    let snap = snapshot();
    render_prometheus_from(&snap)
}

/// Renders an already-taken [`MetricsSnapshot`] (see
/// [`render_prometheus`]).
pub fn render_prometheus_from(snap: &MetricsSnapshot) -> String {
    enum Series<'a> {
        Counter(&'a CounterValue),
        Gauge(&'a GaugeValue),
        Histogram(&'a HistogramSummary),
    }
    // Group series into families (same name), preserving registration
    // order: Prometheus requires one TYPE header per family with all
    // its series following contiguously.
    type Family<'a> = (&'static str, &'static str, Vec<Series<'a>>);
    fn push<'a>(families: &mut Vec<Family<'a>>, name: &'static str, typ: &'static str, s: Series<'a>) {
        match families.iter_mut().find(|(n, t, _)| *n == name && *t == typ) {
            Some((_, _, v)) => v.push(s),
            None => families.push((name, typ, vec![s])),
        }
    }
    let mut families: Vec<Family<'_>> = Vec::new();
    for c in &snap.counters {
        push(&mut families, c.name, "counter", Series::Counter(c));
    }
    for g in &snap.gauges {
        push(&mut families, g.name, "gauge", Series::Gauge(g));
    }
    for h in &snap.histograms {
        push(&mut families, h.name, "histogram", Series::Histogram(h));
    }

    let mut out = String::new();
    let mut le = String::new();
    for (name, typ, series) in &families {
        let help = {
            let reg = REGISTRY.lock().unwrap();
            reg.iter()
                .find(|m| m.name == *name)
                .map_or("", |m| m.help)
        };
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {typ}\n"));
        for s in series {
            match s {
                Series::Counter(c) => {
                    out.push_str(name);
                    fmt_labels(&mut out, &c.labels, None);
                    out.push_str(&format!(" {}\n", c.value));
                }
                Series::Gauge(g) => {
                    out.push_str(name);
                    fmt_labels(&mut out, &g.labels, None);
                    out.push_str(&format!(" {}\n", g.value));
                }
                Series::Histogram(h) => {
                    let top = h
                        .buckets
                        .iter()
                        .rposition(|&c| c != 0)
                        .map_or(0, |i| i + 1);
                    let mut cum = 0u64;
                    for (b, &c) in h.buckets.iter().enumerate().take(top) {
                        cum += c;
                        le.clear();
                        le.push_str(&bucket_range(b).1.to_string());
                        out.push_str(&format!("{name}_bucket"));
                        fmt_labels(&mut out, &h.labels, Some(("le", le.as_str())));
                        out.push_str(&format!(" {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket"));
                    fmt_labels(&mut out, &h.labels, Some(("le", "+Inf")));
                    out.push_str(&format!(" {}\n", h.count));
                    out.push_str(&format!("{name}_sum"));
                    fmt_labels(&mut out, &h.labels, None);
                    out.push_str(&format!(" {}\n", h.sum));
                    out.push_str(&format!("{name}_count"));
                    fmt_labels(&mut out, &h.labels, None);
                    out.push_str(&format!(" {}\n", h.count));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_is_exact_across_threads_and_drains() {
        let c = counter("test_exact_total", "test");
        let before = snapshot().counter("test_exact_total").unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                    // Half the threads drain like a parking worker,
                    // half exit with live shards: both must be exact.
                    if i % 2 == 0 {
                        release_thread();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let after = snapshot().counter("test_exact_total").unwrap();
        assert_eq!(after - before, 80_000);
    }

    #[test]
    fn histogram_percentiles_and_exact_stats() {
        let h = histogram("test_hist_ns", "test");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = snapshot();
        let s = snap.histograms_named("test_hist_ns").next().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        assert!((128.0..=1000.0).contains(&p50), "p50 = {p50}");
        assert!(s.p90() >= p50);
        assert!(s.p99() >= s.p90());
        assert!(s.p99() <= 1000.0, "clamped to observed max");
        assert_eq!(s.quantile(1.0), 1000.0);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_survives_thread_exit_and_release() {
        let h = histogram_with("test_drain_ns", "test", &[("phase", "t")]);
        let before = snapshot()
            .histograms_named("test_drain_ns")
            .next()
            .unwrap()
            .count;
        thread::spawn(move || {
            for _ in 0..500 {
                h.record(7);
            }
            release_thread();
            // Records after a drain re-register a fresh shard.
            for _ in 0..500 {
                h.record(9);
            }
        })
        .join()
        .unwrap();
        let snap = snapshot();
        let s = snap.histograms_named("test_drain_ns").next().unwrap();
        assert_eq!(s.count - before, 1000);
        assert_eq!(s.label("phase"), Some("t"));
    }

    #[test]
    fn registration_dedups_by_name_and_labels() {
        let a = counter_with("test_dedup_total", "test", &[("op", "x")]);
        let b = counter_with("test_dedup_total", "test", &[("op", "x")]);
        let c = counter_with("test_dedup_total", "test", &[("op", "y")]);
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
        a.inc();
        b.inc();
        assert!(snapshot().counter("test_dedup_total").unwrap() >= 2);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test_gauge", "test");
        g.set(42);
        g.add(-2);
        let snap = snapshot();
        let v = snap
            .gauges
            .iter()
            .find(|g| g.name == "test_gauge")
            .unwrap()
            .value;
        assert_eq!(v, 40);
    }

    #[test]
    fn prometheus_text_has_headers_buckets_and_totals() {
        let h = histogram_with("test_prom_ns", "prom test", &[("phase", "p")]);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        counter("test_prom_total", "prom counter").add(3);
        let text = render_prometheus();
        assert!(text.contains("# HELP test_prom_ns prom test"));
        assert!(text.contains("# TYPE test_prom_ns histogram"));
        assert!(text.contains("test_prom_ns_bucket{phase=\"p\",le=\"+Inf\"}"));
        assert!(text.contains("test_prom_ns_count{phase=\"p\"}"));
        assert!(text.contains("test_prom_ns_sum{phase=\"p\"}"));
        assert!(text.contains("# TYPE test_prom_total counter"));
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn bucket_index_covers_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
        }
    }
}
