//! Thread-local allocation counters for the buffer-reuse layer.
//!
//! The scratch-arena work in `rr-mp` routes hot-path limb buffers
//! through a per-thread free list; whether a given acquisition actually
//! hit the system allocator is the number the arena exists to drive
//! down. That number is recorded here — in `rr-obs` rather than in the
//! metrics cost model — for two reasons:
//!
//! * it is **physical**, not modeled: the paper cost snapshot must stay
//!   bit-identical with arenas on and off (that equality is asserted by
//!   `tests/arena_diff.rs`), so anything that varies with `RR_ARENA`
//!   cannot live in `CostSnapshot`; and
//! * the **scheduler** wants per-task deltas: `rr-sched` (which cannot
//!   depend on `rr-mp`) reads this counter around every pool task to
//!   attribute allocation churn to scopes, surfacing the totals in
//!   `PoolStats`.
//!
//! The counters are plain monotone thread-local cells: recording is two
//! wrapping adds, reading is two loads, and there is no cross-thread
//! aggregation here — callers that need totals (the metrics sinks, the
//! pool) take deltas on the thread doing the work.

use crate::metrics::Counter;
use std::cell::Cell;
use std::sync::LazyLock;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

static M_ALLOCS: LazyLock<Counter> = crate::register_metric!(
    counter,
    "rr_alloc_total",
    "Limb-buffer acquisitions that hit the system allocator"
);
static M_BYTES: LazyLock<Counter> = crate::register_metric!(
    counter,
    "rr_alloc_bytes_total",
    "Bytes requested by allocator-hitting limb-buffer acquisitions"
);

/// A point-in-time reading of the calling thread's allocation counters.
/// Monotone: the churn of a region is `after - before`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocReading {
    /// Limb-buffer acquisitions that hit the system allocator.
    pub allocs: u64,
    /// Bytes requested by those acquisitions.
    pub bytes: u64,
}

impl std::ops::Sub for AllocReading {
    type Output = AllocReading;
    fn sub(self, rhs: AllocReading) -> AllocReading {
        AllocReading {
            allocs: self.allocs.wrapping_sub(rhs.allocs),
            bytes: self.bytes.wrapping_sub(rhs.bytes),
        }
    }
}

/// Records one buffer allocation of `bytes` bytes on the calling
/// thread. Called from `rr-mp`'s scratch layer at every acquisition
/// that reached the system allocator; not usually called directly.
#[inline]
pub fn record(bytes: u64) {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
    BYTES.with(|c| c.set(c.get().wrapping_add(bytes)));
    // Mirror into the always-on registry so fleet dashboards see
    // allocation rates without per-task delta plumbing.
    M_ALLOCS.inc();
    M_BYTES.add(bytes);
}

/// The calling thread's monotone allocation counters. Take a reading
/// before and after a region and subtract to get the region's churn.
#[inline]
pub fn reading() -> AllocReading {
    AllocReading {
        allocs: ALLOCS.with(Cell::get),
        bytes: BYTES.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reading_delta_counts_region() {
        let before = reading();
        record(64);
        record(128);
        let d = reading() - before;
        assert_eq!(d.allocs, 2);
        assert_eq!(d.bytes, 192);
    }

    #[test]
    fn counters_are_thread_local() {
        let before = reading();
        std::thread::spawn(|| record(1 << 20)).join().unwrap();
        let d = reading() - before;
        assert_eq!(d.allocs, 0);
        assert_eq!(d.bytes, 0);
    }
}
