//! Merged trace data and exporters.
//!
//! A [`Trace`] is what [`Recorder::finish`](crate::Recorder::finish)
//! returns: every thread's spans and counter samples merged onto one
//! timeline (nanoseconds since the recorder epoch). Higher layers may
//! append records rebased from external clocks (the scheduler's
//! per-task timings arrive this way) before exporting.
//!
//! The primary exporter is [`Trace::to_chrome_json`], which emits the
//! Chrome `trace_event` format understood by Perfetto and
//! `chrome://tracing`: an object with a `traceEvents` array of `"X"`
//! (complete) duration events, `"C"` counter events, and `"M"`
//! metadata events naming the tracks. Timestamps (`ts`) and durations
//! (`dur`) are microseconds, kept fractional to preserve nanosecond
//! resolution.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// A closed span: a named interval of work on one track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. a phase label like `"remainder"`).
    pub name: Cow<'static, str>,
    /// Category: `"phase"`, `"stage"`, `"task"`, …
    pub cat: &'static str,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Track id: recorder-local thread index, or a synthetic track
    /// (e.g. [`WORKER_TRACK_BASE`]` + worker`) for rebased records.
    pub tid: u32,
    /// Numeric arguments shown in the trace viewer's detail pane.
    pub args: Vec<(&'static str, u64)>,
}

/// A timestamped counter sample (rendered as a graph track by Chrome).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRecord {
    /// Counter series name (e.g. `"queue-depth"`).
    pub name: &'static str,
    /// Sample time, nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Sample value.
    pub value: f64,
}

/// Track ids at and above this value are synthetic scheduler-worker
/// tracks (`WORKER_TRACK_BASE + worker_index`), disjoint by
/// construction from recorder-assigned thread indices.
pub const WORKER_TRACK_BASE: u32 = 1000;

/// A merged, time-sorted collection of spans and counters.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, sorted by `(start_ns, Reverse(dur_ns), tid)` so an
    /// enclosing span precedes the spans nested within it.
    pub spans: Vec<SpanRecord>,
    /// All counter samples, sorted by time.
    pub counters: Vec<CounterRecord>,
    /// `(tid, label)` for every track that recorded, sorted by tid.
    pub threads: Vec<(u32, String)>,
}

impl Trace {
    /// Total wall-clock extent: from the earliest span start to the
    /// latest span end.
    pub fn extent(&self) -> Duration {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0);
        Duration::from_nanos(end.saturating_sub(start))
    }

    /// Per-name *self* time for spans of category `cat`: each span's
    /// duration minus the time covered by same-category spans nested
    /// within it on the same track. This mirrors the cost-model rule
    /// that the innermost phase owns the operation count, so per-phase
    /// wall times line up with per-phase mul counts. Returns
    /// `(name, self_time, span_count)` sorted by descending self time.
    pub fn self_time_by_name(&self, cat: &str) -> Vec<(String, Duration, usize)> {
        let mut totals: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
        // Spans are sorted with parents before children, so a per-track
        // stack of open spans identifies each span's innermost enclosing
        // same-category span; the child's duration is charged to itself
        // and subtracted from the parent.
        let mut stacks: BTreeMap<u32, Vec<(usize, u64)>> = BTreeMap::new();
        let mut net: Vec<i128> = Vec::with_capacity(self.spans.len());
        for (i, s) in self.spans.iter().enumerate() {
            if s.cat != cat {
                continue;
            }
            net.resize(i + 1, 0);
            net[i] = i128::from(s.dur_ns);
            let stack = stacks.entry(s.tid).or_default();
            while let Some(&(_, end)) = stack.last() {
                if end <= s.start_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(parent, _)) = stack.last() {
                net[parent] -= i128::from(s.dur_ns);
            }
            stack.push((i, s.start_ns + s.dur_ns));
        }
        for (i, s) in self.spans.iter().enumerate() {
            if s.cat != cat || i >= net.len() {
                continue;
            }
            let e = totals.entry(&s.name).or_default();
            e.0 += u64::try_from(net[i].max(0)).unwrap_or(0);
            e.1 += 1;
        }
        let mut out: Vec<(String, Duration, usize)> = totals
            .into_iter()
            .map(|(name, (ns, count))| (name.to_owned(), Duration::from_nanos(ns), count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Sum of durations of spans of category `cat` (busy time across
    /// all tracks; overlapping spans count multiply).
    pub fn busy_time(&self, cat: &str) -> Duration {
        Duration::from_nanos(
            self.spans
                .iter()
                .filter(|s| s.cat == cat)
                .map(|s| s.dur_ns)
                .sum(),
        )
    }

    /// Serializes the trace as Chrome `trace_event` JSON, loadable in
    /// Perfetto or `chrome://tracing`. All events use `pid` 1; each
    /// trace track becomes a `tid` with an `"M"` `thread_name` record.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for (tid, label) in &self.threads {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_str(label)
            );
        }
        for s in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"cat\":{},\"name\":{},\
                 \"ts\":{},\"dur\":{}",
                s.tid,
                json_str(s.cat),
                json_str(&s.name),
                micros(s.start_ns),
                micros(s.dur_ns),
            );
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in s.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{v}", json_str(k));
                }
                out.push('}');
            }
            out.push('}');
        }
        for c in &self.counters {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":{},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                json_str(c.name),
                micros(c.t_ns),
                fmt_f64(c.value),
            );
        }
        out.push_str("]}");
        out
    }

    /// Writes [`Trace::to_chrome_json`] to `path`.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Nanoseconds → microseconds with fractional part, trailing zeros
/// trimmed (`1500` → `"1.5"`, `2000` → `"2"`).
fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(name: &'static str, cat: &'static str, start: u64, dur: u64, tid: u32) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat,
            start_ns: start,
            dur_ns: dur,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_nested_same_category_spans() {
        let trace = Trace {
            spans: vec![
                sp("outer", "phase", 0, 1_000, 0),
                sp("inner", "phase", 200, 300, 0),
                sp("other-cat", "stage", 400, 100, 0), // ignored: different cat
                sp("inner", "phase", 600, 100, 0),
            ],
            ..Trace::default()
        };
        let selfs = trace.self_time_by_name("phase");
        let get = |n: &str| selfs.iter().find(|(name, ..)| name == n).unwrap();
        assert_eq!(get("outer").1, Duration::from_nanos(600));
        assert_eq!(get("inner").1, Duration::from_nanos(400));
        assert_eq!(get("inner").2, 2);
        // Descending self-time order.
        assert_eq!(selfs[0].0, "outer");
    }

    #[test]
    fn self_time_separates_tracks() {
        let trace = Trace {
            spans: vec![sp("a", "phase", 0, 500, 0), sp("b", "phase", 100, 300, 1)],
            ..Trace::default()
        };
        // Same window but different tracks: no nesting, no subtraction.
        let selfs = trace.self_time_by_name("phase");
        assert_eq!(selfs.iter().map(|s| s.1.as_nanos()).sum::<u128>(), 800);
    }

    #[test]
    fn chrome_json_shape() {
        let trace = Trace {
            spans: vec![{
                let mut s = sp("remainder", "phase", 1_500, 2_000, 0);
                s.args.push(("n", 20));
                s
            }],
            counters: vec![CounterRecord { name: "queue-depth", t_ns: 2_000, value: 3.0 }],
            threads: vec![(0, "main".to_owned())],
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}}"
        ));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"remainder\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"dur\":2"));
        assert!(json.contains("\"args\":{\"n\":20}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3}"));
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(2_000), "2");
        assert_eq!(micros(1_500), "1.5");
        assert_eq!(micros(1_001), "1.001");
        assert_eq!(micros(999), "0.999");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn extent_and_busy() {
        let trace = Trace {
            spans: vec![sp("a", "task", 100, 400, 0), sp("b", "task", 300, 500, 1)],
            ..Trace::default()
        };
        assert_eq!(trace.extent(), Duration::from_nanos(700));
        assert_eq!(trace.busy_time("task"), Duration::from_nanos(900));
        assert_eq!(trace.busy_time("phase"), Duration::ZERO);
    }
}
