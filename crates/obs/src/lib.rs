//! # rr-obs — structured per-solve tracing
//!
//! The paper's empirical claims are about *where time goes*: per-phase
//! multiplication costs (Figures 2–7) and multiprocessor speedups
//! (Tables 3–7). The cost-model counters (`rr-mp::metrics`) reproduce
//! the counts; this crate adds the missing wall-clock dimension — a
//! span/event recorder cheap enough to leave compiled into the hot
//! paths, plus a Chrome `trace_event` exporter so a solve can be opened
//! in Perfetto or `chrome://tracing`.
//!
//! Zero external dependencies (std only), consistent with the
//! workspace's offline dependency policy.
//!
//! ## Design
//!
//! * **Per-solve recorders.** A [`Recorder`] is created per solve and
//!   carried on the solve's session context, so concurrent solves never
//!   share recorders (the same isolation story as the metrics sinks).
//! * **Per-thread buffers, post-hoc merge.** Each thread that records
//!   under a recorder owns a private buffer (registered once, cached in
//!   TLS); recording is a push onto an uncontended list. Buffers are
//!   merged and time-sorted only when [`Recorder::finish`] builds the
//!   [`Trace`].
//! * **Monotonic timestamps.** All times are `Instant`s relative to the
//!   recorder's epoch, so spans recorded on different threads merge onto
//!   one consistent timeline.
//! * **Scoped ambient installation.** [`Recorder::install`] makes the
//!   recorder the calling thread's *ambient* recorder until the guard
//!   drops (stack-shaped, innermost wins — the same discipline as
//!   `rr_mp::SolveCtx`). The free functions [`phase_span`] /
//!   [`stage_span`] / [`counter`] record into the ambient recorder and
//!   cost **a single branch** when none is installed, which is what
//!   keeps untraced solves bit-identical and fast.
//!
//! The per-solve recorder is complemented by [`metrics`] — an
//! always-on, process-wide registry of counters, gauges and log-scale
//! histograms (per-thread shards merged on scrape) for the *fleet*
//! view: latency percentiles and throughput over time, with Prometheus
//! text exposition. Use the recorder to explain one solve; use the
//! metrics registry to watch all of them.
//!
//! ```
//! use rr_obs::Recorder;
//!
//! let rec = Recorder::new();
//! rec.run(|| {
//!     let _outer = rr_obs::stage_span("solve");
//!     {
//!         let _inner = rr_obs::phase_span("remainder");
//!         // ... work ...
//!     }
//!     rr_obs::counter("queue-depth", 3.0);
//! });
//! let trace = rec.finish();
//! assert_eq!(trace.spans.len(), 2);
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod metrics;
pub mod trace;

pub use alloc::AllocReading;
pub use trace::{CounterRecord, SpanRecord, Trace, WORKER_TRACK_BASE};

use std::borrow::Cow;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// One thread's private event buffer within a recorder. Only the owning
/// thread pushes; the merge in [`Recorder::finish`] only drains, so the
/// mutexes are uncontended in steady state.
struct Buffer {
    /// Recorder-local thread index (registration order).
    tid: u32,
    /// Thread label captured at registration (OS thread name if set).
    label: String,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<Vec<CounterRecord>>,
}

struct RecInner {
    /// Process-unique recorder identity (for the per-thread buffer cache).
    id: u64,
    /// All timestamps are durations since this instant.
    epoch: Instant,
    next_tid: AtomicU32,
    buffers: Mutex<Vec<Arc<Buffer>>>,
}

impl RecInner {
    fn register_thread(&self) -> Arc<Buffer> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let label = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_owned);
        let buf = Arc::new(Buffer {
            tid,
            label,
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(Vec::new()),
        });
        self.buffers.lock().expect("buffer registry").push(Arc::clone(&buf));
        buf
    }
}

/// A per-solve span/event recorder. Cheap to clone (all clones share the
/// buffers); `Send + Sync`, so a solve can hand clones to worker tasks.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecInner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("id", &self.inner.id).finish()
    }
}

thread_local! {
    /// Stack of installed recorders; the innermost (last) receives this
    /// thread's spans and counters.
    static AMBIENT: RefCell<Vec<(Arc<RecInner>, Arc<Buffer>)>> = const { RefCell::new(Vec::new()) };
    /// Cache of this thread's buffer per recorder id, so re-installing
    /// the same recorder (every pool task does) never re-locks the
    /// registry.
    static BUFFER_CACHE: RefCell<Vec<(u64, Weak<Buffer>)>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// A fresh recorder; its epoch (time zero of the trace) is now.
    pub fn new() -> Recorder {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Recorder {
            inner: Arc::new(RecInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                next_tid: AtomicU32::new(0),
                buffers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The recorder's epoch. External timelines (e.g. the scheduler's
    /// per-scope task clocks) rebase onto the trace with
    /// `scope_epoch.duration_since(recorder.epoch())`.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Nanoseconds since the epoch, for stamping externally-built records.
    pub fn now_ns(&self) -> u64 {
        elapsed_ns(self.inner.epoch, Instant::now())
    }

    /// This thread's buffer in the recorder, from the TLS cache when
    /// possible.
    fn thread_buffer(&self) -> Arc<Buffer> {
        let id = self.inner.id;
        BUFFER_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            if let Some((_, weak)) = cache.iter().find(|(cached, _)| *cached == id) {
                if let Some(buf) = weak.upgrade() {
                    return buf;
                }
            }
            let buf = self.inner.register_thread();
            cache.push((id, Arc::downgrade(&buf)));
            buf
        })
    }

    /// Installs this recorder as the calling thread's ambient recorder
    /// until the returned guard drops. Nested installs stack; the
    /// innermost wins. The guard is not `Send`.
    pub fn install(&self) -> InstallGuard {
        let buf = self.thread_buffer();
        AMBIENT.with(|stack| stack.borrow_mut().push((Arc::clone(&self.inner), buf)));
        InstallGuard { _not_send: PhantomData }
    }

    /// Runs `f` with this recorder installed, restoring the previous
    /// ambient state afterwards (also on unwind).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.install();
        f()
    }

    /// Drains every thread's buffer into one merged, time-sorted
    /// [`Trace`]. Spans are ordered by start time (ties broken longest
    /// first, so enclosing spans precede their children), which is the
    /// cross-thread merge order the exporters rely on.
    ///
    /// Recording may continue after `finish`; a later `finish` returns
    /// only the events recorded since.
    pub fn finish(&self) -> Trace {
        let mut trace = Trace::default();
        for buf in self.inner.buffers.lock().expect("buffer registry").iter() {
            trace.spans.append(&mut buf.spans.lock().expect("span buffer"));
            trace
                .counters
                .append(&mut buf.counters.lock().expect("counter buffer"));
            if !trace.threads.iter().any(|(tid, _)| *tid == buf.tid) {
                trace.threads.push((buf.tid, buf.label.clone()));
            }
        }
        trace
            .spans
            .sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns), s.tid));
        trace.counters.sort_by_key(|c| c.t_ns);
        trace.threads.sort_by_key(|&(tid, _)| tid);
        trace
    }
}

/// Uninstalls the innermost recorder when dropped. Returned by
/// [`Recorder::install`].
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct InstallGuard {
    // Raw-pointer marker makes the guard !Send + !Sync: it manipulates
    // the installing thread's ambient stack and must drop there.
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// True if the calling thread currently has a recorder installed.
pub fn active() -> bool {
    AMBIENT.with(|stack| !stack.borrow().is_empty())
}

#[inline]
fn elapsed_ns(epoch: Instant, t: Instant) -> u64 {
    t.checked_duration_since(epoch)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// An in-flight span bound to the recorder that was ambient when it
/// opened. Closes (records the span) on drop. When no recorder was
/// installed the guard is inert and costs nothing further.
pub struct Span {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    rec: Arc<RecInner>,
    buf: Arc<Buffer>,
    name: Cow<'static, str>,
    cat: &'static str,
    args: Vec<(&'static str, u64)>,
    start: Instant,
}

impl Span {
    /// Attaches a numeric argument (shown under `args` in the Chrome
    /// trace). No-op on an inert span.
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Span {
        if let Some(open) = &mut self.open {
            open.args.push((key, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let end = Instant::now();
            let start_ns = elapsed_ns(open.rec.epoch, open.start);
            let dur_ns = elapsed_ns(open.rec.epoch, end).saturating_sub(start_ns);
            open.buf.spans.lock().expect("span buffer").push(SpanRecord {
                name: open.name,
                cat: open.cat,
                start_ns,
                dur_ns,
                tid: open.buf.tid,
                args: open.args,
            });
        }
    }
}

/// Opens a span of the given category on the ambient recorder. Returns
/// an inert guard (a single branch, no clock read) when no recorder is
/// installed on this thread.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    let Some((rec, buf)) = AMBIENT.with(|stack| {
        stack
            .borrow()
            .last()
            .map(|(rec, buf)| (Arc::clone(rec), Arc::clone(buf)))
    }) else {
        return Span { open: None };
    };
    Span {
        open: Some(OpenSpan {
            rec,
            buf,
            name: name.into(),
            cat: "",
            args: Vec::new(),
            start: Instant::now(),
        }),
    }
    .with_cat(cat)
}

impl Span {
    fn with_cat(mut self, cat: &'static str) -> Span {
        if let Some(open) = &mut self.open {
            open.cat = cat;
        }
        self
    }
}

/// Opens an algorithm-phase span (category `"phase"`); the name should
/// be a `rr_mp::metrics::Phase` label. Emitted automatically by
/// `rr_mp::metrics::with_phase`.
pub fn phase_span(name: &'static str) -> Span {
    span("phase", name)
}

/// Opens a pipeline-stage span (category `"stage"`, e.g. `"solve"`,
/// `"remainder"`, `"tree"`).
pub fn stage_span(name: &'static str) -> Span {
    span("stage", name)
}

/// Records an instantaneous event — a zero-duration span of the given
/// category — on the ambient recorder; a single branch when none is
/// installed. Used for point-in-time marks like injected faults and
/// cancellation, so traces show *why* a solve was abandoned.
pub fn event(cat: &'static str, name: impl Into<Cow<'static, str>>) {
    drop(span(cat, name));
}

/// Records a counter sample (e.g. a queue depth) on the ambient
/// recorder; a single branch when none is installed.
pub fn counter(name: &'static str, value: f64) {
    AMBIENT.with(|stack| {
        if let Some((rec, buf)) = stack.borrow().last() {
            let t_ns = elapsed_ns(rec.epoch, Instant::now());
            buf.counters
                .lock()
                .expect("counter buffer")
                .push(CounterRecord { name, t_ns, value });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inactive_thread_records_nothing() {
        assert!(!active());
        let rec = Recorder::new();
        {
            let _s = phase_span("orphan"); // no recorder installed
        }
        counter("orphan", 1.0);
        assert!(rec.finish().spans.is_empty());
        assert!(rec.finish().counters.is_empty());
    }

    #[test]
    fn span_nesting_attributes_time_to_innermost() {
        let rec = Recorder::new();
        rec.run(|| {
            let _outer = phase_span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = phase_span("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        });
        let trace = rec.finish();
        assert_eq!(trace.spans.len(), 2);
        // Merge order: enclosing span first (earlier start; ties go to
        // the longer span).
        assert_eq!(trace.spans[0].name, "outer");
        assert_eq!(trace.spans[1].name, "inner");
        let (outer, inner) = (&trace.spans[0], &trace.spans[1]);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.start_ns + outer.dur_ns >= inner.start_ns + inner.dur_ns);
        // Self-time accounting subtracts the nested span.
        let selfs = trace.self_time_by_name("phase");
        let get = |n: &str| selfs.iter().find(|(name, ..)| name == n).unwrap().1;
        assert!(get("outer") + Duration::from_millis(1) < Duration::from_nanos(outer.dur_ns));
        assert!(get("inner") >= Duration::from_millis(2));
    }

    #[test]
    fn nested_recorders_innermost_wins() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        outer.run(|| {
            let _a = phase_span("a");
            inner.run(|| {
                let _b = phase_span("b");
            });
        });
        let to = outer.finish();
        let ti = inner.finish();
        assert_eq!(to.spans.len(), 1);
        assert_eq!(to.spans[0].name, "a");
        assert_eq!(ti.spans.len(), 1);
        assert_eq!(ti.spans[0].name, "b");
        assert!(!active());
    }

    #[test]
    fn guard_restores_on_unwind() {
        let rec = Recorder::new();
        let r = std::panic::catch_unwind(|| {
            rec.run(|| panic!("boom"));
        });
        assert!(r.is_err());
        assert!(!active());
    }

    #[test]
    fn cross_thread_merge_is_time_ordered_with_distinct_tids() {
        let rec = Recorder::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let rec = rec.clone();
                std::thread::Builder::new()
                    .name(format!("obs-test-{i}"))
                    .spawn(move || {
                        rec.run(|| {
                            for k in 0..5u64 {
                                let _s = span("task", format!("t{i}-{k}")).with_arg("k", k);
                                std::hint::black_box(k);
                            }
                        })
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = rec.finish();
        assert_eq!(trace.spans.len(), 20);
        // Merge ordering: non-decreasing start times across threads.
        for w in trace.spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
        // Four registered threads with distinct tids and captured names.
        assert_eq!(trace.threads.len(), 4);
        let tids: std::collections::BTreeSet<u32> =
            trace.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
        assert!(trace.threads.iter().any(|(_, l)| l == "obs-test-2"));
    }

    #[test]
    fn reinstall_reuses_one_buffer_per_thread() {
        let rec = Recorder::new();
        for _ in 0..100 {
            rec.run(|| {
                let _s = phase_span("p");
            });
        }
        let trace = rec.finish();
        assert_eq!(trace.spans.len(), 100);
        assert_eq!(trace.threads.len(), 1, "one buffer despite 100 installs");
    }

    #[test]
    fn counters_are_timestamped_and_sorted() {
        let rec = Recorder::new();
        rec.run(|| {
            counter("depth", 1.0);
            counter("depth", 3.0);
            counter("depth", 2.0);
        });
        let trace = rec.finish();
        assert_eq!(trace.counters.len(), 3);
        assert!(trace.counters.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(trace.counters[1].value, 3.0);
    }

    #[test]
    fn finish_drains_incrementally() {
        let rec = Recorder::new();
        rec.run(|| {
            let _s = phase_span("first");
        });
        assert_eq!(rec.finish().spans.len(), 1);
        rec.run(|| {
            let _s = phase_span("second");
        });
        let t2 = rec.finish();
        assert_eq!(t2.spans.len(), 1);
        assert_eq!(t2.spans[0].name, "second");
    }
}
