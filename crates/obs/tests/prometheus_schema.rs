//! Validates `rr_obs::metrics::render_prometheus` against the
//! Prometheus text exposition format (version 0.0.4) with an in-tree
//! checker: header/series line grammar, one `# TYPE` per family with
//! its series contiguous, cumulative (monotone) histogram buckets
//! terminated by `le="+Inf"`, and `_count` consistency. The `metrics`
//! CI job relies on this as the exposition schema check.

use rr_obs::metrics::{self, HIST_BUCKETS};

/// Splits `name{labels} value` into (name, labels, value); labels may
/// be absent. Panics with context on malformed lines.
fn parse_series(line: &str) -> (String, Vec<(String, String)>, f64) {
    let (head, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("series line has no value: {line:?}");
    });
    let value: f64 = value
        .parse()
        .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set: {line:?}"));
            let labels = body
                .split(',')
                .map(|pair| {
                    let (k, v) = pair
                        .split_once("=\"")
                        .unwrap_or_else(|| panic!("bad label {pair:?} in {line:?}"));
                    let v = v
                        .strip_suffix('"')
                        .unwrap_or_else(|| panic!("unquoted label {pair:?}"));
                    assert!(
                        k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                        "bad label key {k:?}"
                    );
                    (k.to_string(), v.to_string())
                })
                .collect();
            (name.to_string(), labels)
        }
    };
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.chars().next().is_some_and(|c| !c.is_ascii_digit()),
        "bad metric name {name:?}"
    );
    (name, labels, value)
}

#[test]
fn rendered_text_matches_the_exposition_format() {
    // Populate every metric kind, including a labeled histogram family.
    let h = metrics::histogram_with("schema_ns", "schema test histogram", &[("phase", "a")]);
    let h2 = metrics::histogram_with("schema_ns", "schema test histogram", &[("phase", "b")]);
    for v in [0u64, 1, 5, 1023, 1024, 1 << 40] {
        h.record(v);
        h2.record(v * 3);
    }
    metrics::counter("schema_total", "schema test counter").add(7);
    metrics::gauge("schema_depth", "schema test gauge").set(-3);

    let text = metrics::render_prometheus();
    let mut current_family: Option<(String, String)> = None; // (name, type)
    let mut typed_families = Vec::new();
    // Per (family, labels-minus-le): (cumulative buckets, count, saw +Inf).
    let mut hist_state: Vec<(String, Vec<f64>, Option<f64>, bool)> = Vec::new();

    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kw = parts.next().unwrap();
            let name = parts.next().expect("header names a metric").to_string();
            match kw {
                "HELP" => {
                    assert!(parts.next().is_some_and(|h| !h.is_empty()), "empty HELP");
                }
                "TYPE" => {
                    let typ = parts.next().expect("TYPE has a value").to_string();
                    assert!(
                        matches!(typ.as_str(), "counter" | "gauge" | "histogram"),
                        "unknown type {typ:?}"
                    );
                    assert!(
                        !typed_families.contains(&name),
                        "family {name} declared twice — series not contiguous"
                    );
                    typed_families.push(name.clone());
                    current_family = Some((name, typ));
                }
                other => panic!("unknown header keyword {other:?}"),
            }
            continue;
        }
        let (name, labels, value) = parse_series(line);
        let (fam, typ) = current_family.as_ref().expect("series before any TYPE");
        match typ.as_str() {
            "counter" | "gauge" => {
                assert_eq!(&name, fam, "series {name} outside its family {fam}");
                if typ == "counter" {
                    assert!(value >= 0.0, "negative counter {line:?}");
                }
            }
            "histogram" => {
                let base = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                let key = format!("{fam}|{base}");
                let idx = hist_state.iter().position(|(k, ..)| k == &key).unwrap_or_else(|| {
                    hist_state.push((key.clone(), Vec::new(), None, false));
                    hist_state.len() - 1
                });
                let st = &mut hist_state[idx];
                if name == format!("{fam}_bucket") {
                    let le = &labels.iter().find(|(k, _)| k == "le").expect("bucket has le").1;
                    if le == "+Inf" {
                        st.3 = true;
                    } else {
                        le.parse::<u64>().unwrap_or_else(|e| panic!("bad le {le:?}: {e}"));
                        assert!(!st.3, "finite bucket after +Inf");
                    }
                    assert!(
                        st.1.last().is_none_or(|&prev| value >= prev),
                        "non-cumulative buckets in {line:?}"
                    );
                    assert!(st.1.len() <= HIST_BUCKETS, "too many buckets");
                    st.1.push(value);
                } else if name == format!("{fam}_count") {
                    st.2 = Some(value);
                } else {
                    assert_eq!(name, format!("{fam}_sum"), "unexpected series {name}");
                }
            }
            _ => unreachable!(),
        }
    }

    assert!(typed_families.iter().any(|f| f == "schema_ns"));
    assert!(typed_families.iter().any(|f| f == "schema_total"));
    assert!(typed_families.iter().any(|f| f == "schema_depth"));
    let schema_hists: Vec<_> = hist_state
        .iter()
        .filter(|(k, ..)| k.starts_with("schema_ns|"))
        .collect();
    assert_eq!(schema_hists.len(), 2, "one series per label set");
    for (key, buckets, count, saw_inf) in &hist_state {
        assert!(saw_inf, "{key}: histogram missing le=\"+Inf\"");
        let count = count.unwrap_or_else(|| panic!("{key}: histogram missing _count"));
        assert_eq!(
            buckets.last().copied(),
            Some(count),
            "{key}: +Inf bucket != _count"
        );
    }
}
