//! # rr-workload — experiment inputs
//!
//! Reproduces the paper's Section 5 workload and adds classical
//! real-rooted families for wider testing:
//!
//! * [`charpoly_input`] — the characteristic polynomial of a random
//!   symmetric 0–1 integer matrix (the paper's inputs; real symmetric ⇒
//!   all eigenvalues real). The paper ran degrees 10, 15, …, 70 with
//!   three polynomials per degree: [`paper_degrees`], [`paper_inputs`].
//! * [`families`] — Wilkinson, Chebyshev (first kind), and Hermite
//!   (physicists') polynomials: integer coefficients, all roots real and
//!   distinct.
//! * [`with_multiplicities`] — repeated-root stress inputs for the
//!   Section 2.3 path.

#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rr_linalg::charpoly::char_poly;
use rr_linalg::sym::random_symmetric_01;
use rr_mp::Int;
use rr_poly::Poly;

pub mod families;

/// The degree grid of the paper's experiments: 10, 15, …, 70.
pub fn paper_degrees() -> Vec<usize> {
    (2..=14).map(|k| 5 * k).collect()
}

/// The characteristic polynomial of a seeded random symmetric 0–1 matrix
/// of size `n` — one experimental input. Deterministic in `(n, seed)`.
pub fn charpoly_input(n: usize, seed: u64) -> Poly {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    char_poly(&random_symmetric_01(n, &mut rng))
}

/// The paper's inputs: `count` polynomials per degree in
/// [`paper_degrees`] (the paper used 3).
pub fn paper_inputs(count: u64) -> Vec<(usize, Vec<Poly>)> {
    paper_degrees()
        .into_iter()
        .map(|n| (n, (0..count).map(|s| charpoly_input(n, s)).collect()))
        .collect()
}

/// The empirical coefficient size `m(n) = ‖p‖` in bits, as tabulated in
/// the paper's Table 2 column `m(n)`.
pub fn coeff_bits(p: &Poly) -> u64 {
    p.coeff_bits()
}

/// A polynomial with the given integer roots and the given multiplicities.
pub fn with_multiplicities(roots: &[(i64, usize)]) -> Poly {
    let mut all = Vec::new();
    for &(r, m) in roots {
        for _ in 0..m {
            all.push(Int::from(r));
        }
    }
    Poly::from_roots(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_poly::gcd::squarefree_part;
    use rr_poly::sturm::SturmChain;

    #[test]
    fn degree_grid_matches_paper() {
        assert_eq!(
            paper_degrees(),
            vec![10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70]
        );
    }

    #[test]
    fn charpoly_inputs_are_monic_real_rooted() {
        for n in [5usize, 10, 15] {
            for seed in 0..2u64 {
                let p = charpoly_input(n, seed);
                assert_eq!(p.deg(), n);
                assert!(p.lc().is_one());
                let sf = squarefree_part(&p);
                let chain = SturmChain::new(&sf);
                assert_eq!(chain.count_distinct_real_roots(), sf.deg(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn inputs_deterministic_in_seed() {
        assert_eq!(charpoly_input(8, 1), charpoly_input(8, 1));
        assert_ne!(charpoly_input(8, 1), charpoly_input(8, 2));
    }

    #[test]
    fn coeff_bits_grows_with_degree() {
        // sanity on the m(n) column: growing, single digits to tens
        let m10 = coeff_bits(&charpoly_input(10, 0));
        let m30 = coeff_bits(&charpoly_input(30, 0));
        assert!((1..=12).contains(&m10), "{m10}");
        assert!(m30 > m10, "{m30} vs {m10}");
    }

    #[test]
    fn multiplicity_builder() {
        let p = with_multiplicities(&[(1, 2), (3, 1)]);
        assert_eq!(p.deg(), 3);
        let sf = squarefree_part(&p);
        assert_eq!(sf.deg(), 2);
    }
}
