//! Classical real-rooted polynomial families with integer coefficients.

use rr_mp::Int;
use rr_poly::Poly;

/// The Wilkinson polynomial `∏_{k=1}^{n} (x − k)`: notoriously
/// ill-conditioned for floating-point methods, exact here.
pub fn wilkinson(n: usize) -> Poly {
    Poly::from_roots(&(1..=n as i64).map(Int::from).collect::<Vec<_>>())
}

/// Chebyshev polynomial of the first kind `T_n`: integer coefficients,
/// `n` distinct real roots `cos((2k−1)π/2n)` in `(−1, 1)`.
pub fn chebyshev_t(n: usize) -> Poly {
    // T_0 = 1, T_1 = x, T_{k+1} = 2x·T_k − T_{k−1}
    let mut t0 = Poly::one();
    let mut t1 = Poly::x();
    if n == 0 {
        return t0;
    }
    let two_x = Poly::from_i64(&[0, 2]);
    for _ in 1..n {
        let t2 = &two_x * &t1 - &t0;
        t0 = t1;
        t1 = t2;
    }
    t1
}

/// Hermite polynomial (physicists') `H_n`: integer coefficients, `n`
/// distinct real roots symmetric about 0.
pub fn hermite(n: usize) -> Poly {
    // H_0 = 1, H_1 = 2x, H_{k+1} = 2x·H_k − 2k·H_{k−1}
    let mut h0 = Poly::one();
    let mut h1 = Poly::from_i64(&[0, 2]);
    if n == 0 {
        return h0;
    }
    let two_x = Poly::from_i64(&[0, 2]);
    for k in 1..n {
        let h2 = &two_x * &h1 - h0.scale(&Int::from(2 * k as u64));
        h0 = h1;
        h1 = h2;
    }
    h1
}

/// Legendre polynomial `P_n` scaled by `2^n` to clear denominators:
/// integer coefficients, `n` distinct real roots in `(−1, 1)`.
pub fn legendre_scaled(n: usize) -> Poly {
    // Bonnet: (k+1)·P_{k+1} = (2k+1)·x·P_k − k·P_{k−1}. With
    // Q_k = 2^k·k!·P_k ... simpler: track P_k with rational-free form
    // R_k = 2^k·P_k·binom-normalizer. Easiest exact route: R_k = P_k
    // scaled by lcm denominators is awkward; instead use the explicit
    // recurrence on S_k = 2^k k! P_k:
    //   S_{k+1} = 2(2k+1)·x·S_k − 4k²·S_{k−1}
    // (verify: P_{k+1} = ((2k+1) x P_k − k P_{k−1})/(k+1); multiply by
    // 2^{k+1}(k+1)!.)
    let mut s0 = Poly::one();
    let mut s1 = Poly::from_i64(&[0, 2]);
    if n == 0 {
        return s0;
    }
    for k in 1..n {
        let a = Poly::from_i64(&[0, 2 * (2 * k as i64 + 1)]);
        let s2 = &a * &s1 - s0.scale(&Int::from(4 * (k as u64) * (k as u64)));
        s0 = s1;
        s1 = s2;
    }
    s1.primitive_part()
}

/// A cluster-stress polynomial: `k` rational roots spaced `2^−gap_bits`
/// apart starting at `start` — `∏_{i=0}^{k−1} (2^g·x − (2^g·start + i))`.
/// Root separation is exactly one ulp at precision `gap_bits`, so
/// isolating them requires the interval stage to work at full precision.
pub fn clustered_roots(k: usize, gap_bits: u64, start: i64) -> Poly {
    let base = Int::from(start) << gap_bits;
    let mut p = Poly::one();
    for i in 0..k {
        // 2^g·x − (base + i)
        let factor = Poly::from_coeffs(vec![-(&base + Int::from(i as u64)), Int::pow2(gap_bits)]);
        p = &p * &factor;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_poly::eval::eval;
    use rr_poly::sturm::SturmChain;

    fn assert_real_rooted(p: &Poly, n: usize, name: &str) {
        assert_eq!(p.deg(), n, "{name} degree");
        let chain = SturmChain::new(p);
        assert_eq!(chain.count_distinct_real_roots(), n, "{name} real roots");
    }

    #[test]
    fn wilkinson_properties() {
        let w = wilkinson(10);
        assert_real_rooted(&w, 10, "wilkinson");
        for k in 1..=10i64 {
            assert_eq!(eval(&w, &Int::from(k)), Int::zero());
        }
    }

    #[test]
    fn chebyshev_known_values() {
        assert_eq!(chebyshev_t(0), Poly::one());
        assert_eq!(chebyshev_t(1), Poly::x());
        assert_eq!(chebyshev_t(2), Poly::from_i64(&[-1, 0, 2]));
        assert_eq!(chebyshev_t(3), Poly::from_i64(&[0, -3, 0, 4]));
        assert_eq!(chebyshev_t(4), Poly::from_i64(&[1, 0, -8, 0, 8]));
        for n in [5usize, 9, 16] {
            assert_real_rooted(&chebyshev_t(n), n, "chebyshev");
            // T_n(1) = 1
            assert_eq!(eval(&chebyshev_t(n), &Int::one()), Int::one());
        }
    }

    #[test]
    fn hermite_known_values() {
        assert_eq!(hermite(0), Poly::one());
        assert_eq!(hermite(1), Poly::from_i64(&[0, 2]));
        assert_eq!(hermite(2), Poly::from_i64(&[-2, 0, 4]));
        assert_eq!(hermite(3), Poly::from_i64(&[0, -12, 0, 8]));
        assert_eq!(hermite(4), Poly::from_i64(&[12, 0, -48, 0, 16]));
        for n in [5usize, 8, 12] {
            assert_real_rooted(&hermite(n), n, "hermite");
        }
    }

    #[test]
    fn clustered_roots_structure() {
        let p = clustered_roots(4, 6, 3);
        assert_eq!(p.deg(), 4);
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_distinct_real_roots(), 4);
        // roots are 3 + i/64: evaluate the scaled polynomial at them
        for i in 0..4i64 {
            let sp = rr_poly::eval::ScaledPoly::new(&p, 6);
            let at = (Int::from(3) << 6) + Int::from(i);
            assert_eq!(sp.sign_at(&at), 0, "root at 3 + {i}/64");
        }
    }

    #[test]
    fn legendre_known_values() {
        // 2 P_2 = 3x^2 - 1 ... our scaling is primitive-part normalized:
        // P_2 ∝ 3x^2 - 1, P_3 ∝ 5x^3 - 3x.
        assert_eq!(legendre_scaled(2), Poly::from_i64(&[-1, 0, 3]));
        assert_eq!(legendre_scaled(3), Poly::from_i64(&[0, -3, 0, 5]));
        for n in [4usize, 7, 11] {
            assert_real_rooted(&legendre_scaled(n), n, "legendre");
        }
    }
}
