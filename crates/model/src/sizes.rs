//! Coefficient-size bounds (paper Eqs 21–31).
//!
//! All sizes are in bits. The paper sets `β = 2m + 3·log₂n + 2`, after
//! which `‖F_i‖ ≤ i·β`, `‖Q_i‖ ≤ 2i·β`, `‖A_i‖, ‖B_i‖ ≤ (i−1)β + log n`,
//! `‖P_{i,i+k−1}‖ ≤ (2i+k−2)β`, `‖P_{i,n}‖ ≤ (i−1)β`, and
//! `‖T_{i,i+k−1}‖ ≤ (2i+k−1)β`. These are Collins determinant bounds —
//! correct but pessimistic, which is exactly the paper's Figure 6 vs 7
//! observation (tight multiplication-count fit, loose bit-cost bound).

/// `β = 2m + 3·log₂n + 2` for a degree-`n` input with `m`-bit
/// coefficients.
pub fn beta(n: usize, m: u64) -> f64 {
    2.0 * m as f64 + 3.0 * (n as f64).log2() + 2.0
}

/// Bound on `‖F_i‖` (Eq 25): `i·β`.
pub fn f_bound(n: usize, m: u64, i: usize) -> f64 {
    if i == 0 {
        m as f64
    } else {
        i as f64 * beta(n, m)
    }
}

/// Bound on `‖Q_i‖` (Eq 26): `2i·β`.
pub fn q_bound(n: usize, m: u64, i: usize) -> f64 {
    2.0 * i as f64 * beta(n, m)
}

/// Bound on `‖P_{i,j}‖` (Eqs 29–30).
pub fn p_bound(n: usize, m: u64, i: usize, j: usize) -> f64 {
    let b = beta(n, m);
    if j == n {
        (i as f64 - 1.0).max(1.0) * b
    } else {
        let k = j - i + 1;
        (2 * i + k - 2) as f64 * b
    }
}

/// Bound on `‖T_{i,j}‖` (Eq 31): `(2i + k − 1)·β` with `k = j − i + 1`.
pub fn t_bound(n: usize, m: u64, i: usize, j: usize) -> f64 {
    let k = j - i + 1;
    (2 * i + k - 1) as f64 * beta(n, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_mp::Int;
    use rr_poly::remainder::remainder_sequence;
    use rr_poly::Poly;

    /// The bounds must actually bound the implementation's sizes.
    #[test]
    fn f_and_q_bounds_hold_on_real_sequences() {
        for seed in 0..3i64 {
            let roots: Vec<Int> = (1..=9).map(|r| Int::from(seed * 17 + 3 * r - 11)).collect();
            let roots: Vec<Int> = roots.into_iter().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
            let p = Poly::from_roots(&roots);
            let n = p.deg();
            let m = p.coeff_bits();
            let rs = remainder_sequence(&p).unwrap();
            for i in 0..=n {
                assert!(
                    (rs.f[i].coeff_bits() as f64) <= f_bound(n, m, i).max(m as f64),
                    "‖F_{i}‖ = {} > bound {}",
                    rs.f[i].coeff_bits(),
                    f_bound(n, m, i)
                );
            }
            for i in 1..n {
                assert!(
                    (rs.q[i].coeff_bits() as f64) <= q_bound(n, m, i),
                    "‖Q_{i}‖ = {} > bound {}",
                    rs.q[i].coeff_bits(),
                    q_bound(n, m, i)
                );
            }
        }
    }

    #[test]
    fn beta_monotone() {
        assert!(beta(10, 5) < beta(10, 6));
        assert!(beta(10, 5) < beta(20, 5));
        assert!(beta(2, 1) > 0.0);
    }

    #[test]
    fn t_bound_exceeds_p_bound() {
        // ‖T_{i,j}‖ bounds the largest entry, which is P_{i+1,j}-sized.
        for (i, j, n) in [(1usize, 3usize, 15usize), (4, 7, 15), (2, 2, 15)] {
            assert!(t_bound(n, 8, i, j) >= p_bound(n, 8, i, j));
        }
    }
}
