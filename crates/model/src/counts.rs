//! Exact predicted multiplication counts for the remainder and tree
//! stages.
//!
//! These mirror the implemented kernels operation for operation under a
//! *dense* coefficient model (every polynomial of degree `d` has `d+1`
//! nonzero coefficients and no leading-term cancellation in sums). For
//! the remainder stage the prediction is exact; for the tree stage it is
//! exact up to coefficients that happen to vanish (e.g. for inputs with
//! symmetric root sets) — the paper's Figures 2–5 show the same
//! character: predictions track observations tightly, from above.

use rr_core::tree::{is_spine, Tree};

/// Predicted multiplications of the (sequential or parallel — identical
/// kernels) remainder stage for a squarefree degree-`n` input:
///
/// * `n` for the derivative `F_1 = F_0'`;
/// * per iteration `i = 1 … n−1` with `d = n − i`: 3 for the quotient
///   coefficients, 1 for `c_i²`, `3d − 1` for the output coefficients,
///   plus 1 for the denominator `c_{i−1}²` when `i ≥ 2`.
pub fn remainder_mults(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let n64 = n as u64;
    let mut total = n64; // derivative
    for i in 1..n64 {
        let d = n64 - i;
        total += 3 + 1 + (3 * d - 1) + u64::from(i >= 2);
    }
    total
}

/// Number of nonzero coefficients of each entry of the `T` matrix of a
/// node of size `s = j − i + 1` under the dense model:
/// `[[s−1 (0 if s = 1), s], [s, s+1]]`.
fn t_entry_counts(s: usize) -> [[u64; 2]; 2] {
    let s = s as u64;
    [[if s == 1 { 0 } else { s - 1 }, s], [s, s + 1]]
}

/// Entry counts for the `c_k²·I` stand-in for a missing right child.
fn missing_counts() -> [[u64; 2]; 2] {
    [[1, 0], [0, 1]]
}

/// Entry counts for `Ŝ_k = [[0, c²], [−c², Q]]`.
fn s_hat_counts() -> [[u64; 2]; 2] {
    [[0, 1], [1, 2]]
}

/// Dense-model multiplications of one 2×2 polynomial matrix product,
/// given the per-entry nonzero-coefficient counts of the operands
/// (a zero polynomial costs nothing; otherwise `cnt(a)·cnt(b)`).
fn matmul_mults(a: [[u64; 2]; 2], b: [[u64; 2]; 2]) -> u64 {
    let mut total = 0;
    for row in &a {
        for (b0, b1) in b[0].iter().zip(&b[1]) {
            total += row[0] * b0 + row[1] * b1;
        }
    }
    total
}

/// Entry counts of a product (dense degree arithmetic, no cancellation).
fn matmul_counts(a: [[u64; 2]; 2], b: [[u64; 2]; 2]) -> [[u64; 2]; 2] {
    let mut out = [[0u64; 2]; 2];
    for r in 0..2 {
        for c in 0..2 {
            // deg(sum of products) + 1 = max over nonzero products of
            // (cnt_a + cnt_b − 1)
            let mut cnt = 0u64;
            for (x, y) in [(a[r][0], b[0][c]), (a[r][1], b[1][c])] {
                if x > 0 && y > 0 {
                    cnt = cnt.max(x + y - 1);
                }
            }
            out[r][c] = cnt;
        }
    }
    out
}

/// Predicted multiplications of the tree-polynomial stage (COMPUTEPOLY)
/// for a squarefree degree-`n` input: a walk over the same tree the
/// solver builds, counting
///
/// * 2 per non-spine node for `Ŝ_k`'s squares (`c_{k−1}²`, `c_k²`) — and
///   for leaves, whose matrix *is* `Ŝ_i`;
/// * 1 per missing right child (its `c_k²·I` stand-in);
/// * the two matrix products `M1 = T_R·Ŝ_k`, `T = M1·T_L` under the
///   dense model.
pub fn tree_mults(n: usize) -> u64 {
    let tree = Tree::build(n);
    let mut total = 0u64;
    for node in &tree.nodes {
        let spine = is_spine(node, n);
        if node.is_leaf() {
            if !spine {
                total += 2; // Ŝ_i squares
            }
            continue;
        }
        if spine {
            continue; // P_{i,n} = F_{i−1}: no matrix work on the spine
        }
        total += 2; // Ŝ_k squares
        total += 3; // combine divisor c_k²·c_{k−1}² (two squares, one product)
        let left = tree.node(node.left.expect("internal"));
        let t_l = t_entry_counts(left.size());
        let t_r = match node.right {
            Some(r) => t_entry_counts(tree.node(r).size()),
            None => {
                total += 1; // c_k² of the stand-in
                missing_counts()
            }
        };
        let m1_cost = matmul_mults(t_r, s_hat_counts());
        let m1 = matmul_counts(t_r, s_hat_counts());
        let t_cost = matmul_mults(m1, t_l);
        total += m1_cost + t_cost;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::{RootApproximator, SolverConfig};
    use rr_mp::metrics::{self, Phase};
    use rr_mp::Int;
    use rr_poly::Poly;

    /// Remainder-stage prediction is *exact* for dense inputs.
    #[test]
    fn remainder_prediction_exact() {
        for n in [2usize, 3, 5, 8, 13] {
            // roots chosen so no intermediate coefficient vanishes
            let roots: Vec<Int> = (0..n as i64).map(|r| Int::from(3 * r + 1)).collect();
            let p = Poly::from_roots(&roots);
            let before = metrics::snapshot();
            let _ = rr_poly::remainder::remainder_sequence(&p).unwrap();
            let d = metrics::snapshot() - before;
            // the sequential path runs un-phased here: count all phases
            assert_eq!(d.total().mul_count, remainder_mults(n), "n={n}");
        }
    }

    /// Tree-stage prediction matches the observed count tightly (equal
    /// for generic inputs; an upper bound when coefficients vanish).
    #[test]
    fn tree_prediction_tight() {
        for n in [3usize, 5, 8, 12, 17] {
            let roots: Vec<Int> = (0..n as i64).map(|r| Int::from(5 * r - 7)).collect();
            let p = Poly::from_roots(&roots);
            let r = RootApproximator::new(SolverConfig::sequential(8))
                .approximate_roots(&p)
                .unwrap();
            // the solve owns its metrics: stats.cost is the exact count
            let observed = r.stats.cost.phase(Phase::TreePoly).mul_count;
            let predicted = tree_mults(n);
            assert!(observed <= predicted, "n={n}: {observed} > {predicted}");
            assert!(
                observed as f64 >= 0.8 * predicted as f64,
                "n={n}: {observed} ≪ {predicted}"
            );
        }
    }

    #[test]
    fn remainder_formula_small_cases() {
        // n=2: derivative (2) + iteration 1 (d=1): 3+1+2 = 6 → total 8
        assert_eq!(remainder_mults(2), 8);
        assert_eq!(remainder_mults(0), 0);
        assert_eq!(remainder_mults(1), 1); // derivative only
        // n=3 adds iteration 2 (d=1): 3+1+2+1(denominator) = 7 → 19
        assert_eq!(remainder_mults(3), 19);
    }

    #[test]
    fn tree_counts_zero_for_tiny_trees() {
        // n=1: single spine leaf → no matrix work at all.
        assert_eq!(tree_mults(1), 0);
        // n=2: leaf [1,1] (Ŝ_1: 2 squares) + spine root: 2.
        assert_eq!(tree_mults(2), 2);
    }

    #[test]
    fn counts_grow_quadratically() {
        // arithmetic complexity is O(n²): ratio n=40 / n=20 ≈ 4.
        let r = tree_mults(40) as f64 / tree_mults(20) as f64;
        assert!((3.0..5.5).contains(&r), "{r}");
        let r = remainder_mults(40) as f64 / remainder_mults(20) as f64;
        assert!((3.5..4.5).contains(&r), "{r}");
    }
}
