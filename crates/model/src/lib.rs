//! # rr-model — the analytic cost model of Section 4
//!
//! The paper validates its analysis by comparing *predicted* against
//! *observed* multiplication counts per phase (Figures 2–6) and bit
//! complexities (Figure 7). This crate is the "predicted" side:
//!
//! * [`sizes`] — the coefficient-size machinery: `β = 2m + 3·log n + 2`
//!   and the Collins-style bounds `‖F_i‖ ≤ i·β`, `‖Q_i‖ ≤ 2i·β`,
//!   `‖P_{i,j}‖ ≤ (2i+k−2)·β`, `‖T‖` (Eqs 21–31).
//! * [`counts`] — *exact* predicted multiplication counts for the
//!   remainder and tree stages, mirroring the implemented kernels
//!   operation for operation (the paper used "much more precise versions
//!   of the asymptotic expressions"; ours are exact for dense
//!   polynomials, so predicted = observed up to coefficients that happen
//!   to be zero).
//! * [`interval_model`] — the interval-problem iteration counts:
//!   worst-case `I(X, d)` (Eq 38) and average-case `I_avg(X, d)`
//!   (Eq 41), and the per-phase evaluation/multiplication predictions
//!   built from them.
//! * [`asymptotic`] — the Table 1 closed forms, used by the Table 1
//!   scaling-fit experiment.

#![warn(missing_docs)]

pub mod asymptotic;
pub mod counts;
pub mod interval_model;
pub mod sizes;
