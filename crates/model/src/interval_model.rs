//! Interval-problem cost model (paper Eqs 37–41).
//!
//! `X = R + µ` bounds the bit size of every scaled evaluation point. Per
//! isolated root of a degree-`d` polynomial the hybrid performs
//! `I(X, d)` evaluations:
//!
//! * worst case (Eq 38): `½·log²X + log(10d²) + O(log X)` — the sieve
//!   dominated by its double-exponential ladder;
//! * average case (Eq 41), for roots uniform in their interval:
//!   `I_avg = log(10d²) + log(⌈X / log(10d²)⌉)` — constant sieve work,
//!   then bisection to the Renegar margin and quadratic Newton for the
//!   remaining bits.
//!
//! One evaluation of a degree-`d` scaled polynomial is exactly `d`
//! multiplications (Horner); its bit cost is Eq 37:
//! `m·X·d + X²·d(d−1)/2 + X·d·log d`.

use rr_core::tree::{is_spine, Tree};

/// Average sieve evaluations per isolated root under the uniform-root
/// assumption (one midpoint test + a constant number of ladder probes).
pub const SIEVE_EVALS_AVG: f64 = 3.0;

/// Bisection evaluations per isolated root: `⌈log₂(10·d²)⌉`.
pub fn bisection_evals(d: usize) -> f64 {
    (10.0 * (d as f64) * (d as f64)).log2().ceil().max(1.0)
}

/// Newton iterations per isolated root (Eq 41's second term):
/// `log₂(⌈X / log₂(10d²)⌉)`, each iteration costing one polynomial and
/// one derivative evaluation.
pub fn newton_iters(x: f64, d: usize) -> f64 {
    let attained = bisection_evals(d);
    (x / attained).ceil().max(1.0).log2().max(1.0)
}

/// Worst-case evaluations per interval problem, Eq 38.
pub fn i_worst(x: f64, d: usize) -> f64 {
    0.5 * x.log2().powi(2) + bisection_evals(d) + x.log2()
}

/// Average-case evaluations per interval problem, Eq 41.
pub fn i_avg(x: f64, d: usize) -> f64 {
    SIEVE_EVALS_AVG + bisection_evals(d) + 2.0 * newton_iters(x, d)
}

/// Bit cost of one scaled evaluation of a degree-`d` polynomial with
/// `m`-bit coefficients at an `X`-bit point (Eq 37).
pub fn eval_bitcost(d: usize, m: f64, x: f64) -> f64 {
    let d = d as f64;
    m * x * d + x * x * d * (d - 1.0) / 2.0 + x * d * d.log2().max(0.0)
}

/// Predicted multiplication counts of the whole interval stage for a
/// squarefree degree-`n` input, split into the phases the solver
/// attributes: `(preinterval, sieve, bisection, newton)`.
///
/// Walks the same tree the solver builds; every internal node of degree
/// `d` performs `d + 1` PREINTERVAL evaluations, and each of its `d` gaps
/// one case-analysis evaluation (attributed to the sieve phase) plus —
/// in the generic case — a full hybrid refinement.
pub fn interval_mults(n: usize, bound_bits: u64, mu: u64) -> IntervalPrediction {
    let x = (bound_bits + mu) as f64;
    let tree = Tree::build(n);
    let mut p = IntervalPrediction::default();
    for node in &tree.nodes {
        let d = node_degree(node, n);
        if d == 0 {
            continue;
        }
        if node.is_leaf() {
            continue; // one exact division, no multiplications
        }
        let dm = d as f64;
        p.preinterval += (dm + 1.0) * dm;
        // per gap: one b-point evaluation + sieve ladder
        p.sieve += dm * (1.0 + SIEVE_EVALS_AVG) * dm;
        p.bisection += dm * bisection_evals(d) * dm;
        // Newton: one poly (d) + one derivative (d−1) eval per iteration
        p.newton += dm * newton_iters(x, d) * (2.0 * dm - 1.0);
    }
    p
}

fn node_degree(node: &rr_core::tree::TreeNode, n: usize) -> usize {
    let _ = is_spine(node, n);
    node.size()
}

/// Per-phase predicted multiplication counts for the interval stage.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntervalPrediction {
    /// PREINTERVAL evaluations.
    pub preinterval: f64,
    /// Case-analysis + double-exponential-sieve evaluations.
    pub sieve: f64,
    /// Bisection-phase evaluations.
    pub bisection: f64,
    /// Newton-phase evaluations (polynomial + derivative).
    pub newton: f64,
}

impl IntervalPrediction {
    /// Total predicted multiplications.
    pub fn total(&self) -> f64 {
        self.preinterval + self.sieve + self.bisection + self.newton
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_count_shapes() {
        // I_avg grows with X (more precision → more Newton iterations)
        assert!(i_avg(40.0, 10) < i_avg(160.0, 10));
        // and with d (more bisections)
        assert!(i_avg(40.0, 5) < i_avg(40.0, 50));
        // worst case dominates average for large X
        assert!(i_worst(200.0, 10) > i_avg(200.0, 10));
    }

    #[test]
    fn eval_bitcost_quadratic_in_x_and_d() {
        let base = eval_bitcost(10, 20.0, 50.0);
        assert!(eval_bitcost(10, 20.0, 100.0) > 3.0 * base);
        assert!(eval_bitcost(20, 20.0, 50.0) > 3.0 * base);
    }

    #[test]
    fn prediction_positive_and_growing() {
        let a = interval_mults(10, 8, 16);
        let b = interval_mults(20, 8, 16);
        assert!(a.total() > 0.0);
        assert!(b.total() > 2.0 * a.total());
        assert!(a.preinterval > 0.0 && a.bisection > 0.0 && a.newton > 0.0);
    }

    #[test]
    fn mu_sensitivity_isolated_to_newton() {
        // raising µ raises only the Newton term (and X inside it)
        let lo = interval_mults(15, 8, 8);
        let hi = interval_mults(15, 8, 64);
        assert_eq!(lo.preinterval, hi.preinterval);
        assert_eq!(lo.bisection, hi.bisection);
        assert!(hi.newton > lo.newton);
    }
}
