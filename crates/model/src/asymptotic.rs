//! The Table 1 closed forms: asymptotic arithmetic and bit complexity of
//! each phase, used by the Table 1 scaling-fit experiment (which checks
//! that the *measured* counts grow with the predicted exponents).

/// Arithmetic complexity (multiplications) of the remainder stage:
/// `Θ(n²)`; returns the dominant term `3n²/2`.
pub fn remainder_arith(n: f64) -> f64 {
    1.5 * n * n
}

/// Bit complexity of the remainder stage: `n⁴(m + log n)²`, with the
/// paper's constant `n⁴β²/2` where `β = 2m + 3 log n + 2`.
pub fn remainder_bits(n: f64, m: f64) -> f64 {
    let beta = 2.0 * m + 3.0 * n.log2() + 2.0;
    0.5 * n.powi(4) * beta * beta
}

/// Arithmetic complexity of the tree stage: `Θ(n²)`.
pub fn tree_arith(n: f64) -> f64 {
    // Σ over levels of 8·(entries) ≈ 2n² up to constants; the exact
    // constant is irrelevant to the scaling fit.
    2.0 * n * n
}

/// Bit complexity of the tree stage (Eq 36): `(55/21)·n⁴·β²`.
pub fn tree_bits(n: f64, m: f64) -> f64 {
    let beta = 2.0 * m + 3.0 * n.log2() + 2.0;
    (55.0 / 21.0) * n.powi(4) * beta * beta
}

/// Arithmetic complexity of the interval problems, worst case:
/// `n²(log n + log²X)`.
pub fn interval_arith_worst(n: f64, x: f64) -> f64 {
    n * n * (n.log2() + x.log2() * x.log2())
}

/// Arithmetic complexity of the interval problems, average case:
/// `n²(log n + log X)`.
pub fn interval_arith_avg(n: f64, x: f64) -> f64 {
    n * n * (n.log2() + x.log2())
}

/// Bit complexity of the interval problems, worst case:
/// `n³·X·(X + β)·(log n + log²X)`.
pub fn interval_bits_worst(n: f64, m: f64, x: f64) -> f64 {
    let beta = 2.0 * m + 3.0 * n.log2() + 2.0;
    n.powi(3) * x * (x + beta) * (n.log2() + x.log2() * x.log2())
}

/// Bit complexity of the interval problems, average case:
/// `n³·X·(X + β)·(log n + log X)`.
pub fn interval_bits_avg(n: f64, m: f64, x: f64) -> f64 {
    let beta = 2.0 * m + 3.0 * n.log2() + 2.0;
    n.powi(3) * x * (x + beta) * (n.log2() + x.log2())
}

/// Least-squares fit of `log y = a·log x + b` — returns the exponent `a`.
/// Used to compare measured growth orders against Table 1.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    assert!(n >= 2.0, "need at least two points to fit");
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_exponents() {
        let quad: Vec<(f64, f64)> = (1..20).map(|k| (k as f64, 3.0 * (k * k) as f64)).collect();
        assert!((fit_exponent(&quad) - 2.0).abs() < 1e-9);
        let quartic: Vec<(f64, f64)> =
            (1..20).map(|k| (k as f64, 0.5 * (k as f64).powi(4))).collect();
        assert!((fit_exponent(&quartic) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn formulas_have_table1_growth() {
        // doubling n quadruples the arithmetic counts
        assert!((remainder_arith(80.0) / remainder_arith(40.0) - 4.0).abs() < 1e-9);
        assert!((tree_arith(80.0) / tree_arith(40.0) - 4.0).abs() < 1e-9);
        // bit complexities grow ~n⁴ (slightly faster via β's log n)
        let r = remainder_bits(80.0, 20.0) / remainder_bits(40.0, 20.0);
        assert!(r > 16.0 && r < 20.0, "{r}");
        // average-case interval cost below worst case
        assert!(interval_arith_avg(50.0, 100.0) < interval_arith_worst(50.0, 100.0));
        assert!(interval_bits_avg(50.0, 20.0, 100.0) < interval_bits_worst(50.0, 20.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_needs_points() {
        fit_exponent(&[(1.0, 1.0)]);
    }
}
