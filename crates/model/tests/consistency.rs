//! Cross-crate consistency of the analytic model beyond the unit tests:
//! exactness of the structural predictions on randomized inputs and
//! internal coherence of the asymptotic formulas.

use proptest::prelude::*;
use rr_model::asymptotic::fit_exponent;
use rr_model::{counts, interval_model, sizes};
use rr_mp::metrics;
use rr_mp::Int;
use rr_poly::remainder::remainder_sequence;
use rr_poly::Poly;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The remainder-stage count prediction is exact for any squarefree
    /// real-rooted input (not just the char-poly workload).
    #[test]
    fn remainder_count_exact_on_random_inputs(
        roots in prop::collection::btree_set(-60i64..60, 2..14),
    ) {
        let ints: Vec<Int> = roots.iter().map(|&r| Int::from(r)).collect();
        let p = Poly::from_roots(&ints);
        let before = metrics::snapshot();
        let _ = remainder_sequence(&p).unwrap();
        let observed = (metrics::snapshot() - before).total().mul_count;
        prop_assert_eq!(observed, counts::remainder_mults(ints.len()));
    }

    /// Size bounds hold for every sequence element on random inputs.
    #[test]
    fn collins_bounds_hold(roots in prop::collection::btree_set(-99i64..99, 2..10)) {
        let ints: Vec<Int> = roots.iter().map(|&r| Int::from(r)).collect();
        let p = Poly::from_roots(&ints);
        let (n, m) = (p.deg(), p.coeff_bits());
        let rs = remainder_sequence(&p).unwrap();
        for i in 1..=n {
            prop_assert!(
                rs.f[i].coeff_bits() as f64 <= sizes::f_bound(n, m, i) + 1.0,
                "‖F_{}‖ = {} vs {}", i, rs.f[i].coeff_bits(), sizes::f_bound(n, m, i)
            );
        }
    }
}

#[test]
fn interval_model_monotonicity_grid() {
    // total predicted interval work increases in n, µ, and R
    let base = interval_model::interval_mults(20, 10, 30).total();
    assert!(interval_model::interval_mults(25, 10, 30).total() > base);
    assert!(interval_model::interval_mults(20, 10, 60).total() > base);
    assert!(interval_model::interval_mults(20, 20, 30).total() > base);
}

#[test]
fn predicted_counts_have_table1_exponents() {
    // the model's own predictions must grow with the orders it claims
    let rem: Vec<(f64, f64)> = (5..=60)
        .step_by(5)
        .map(|n| (n as f64, counts::remainder_mults(n) as f64))
        .collect();
    let e = fit_exponent(&rem);
    assert!((1.8..2.2).contains(&e), "remainder exponent {e}");
    let tree: Vec<(f64, f64)> = (5..=60)
        .step_by(5)
        .map(|n| (n as f64, counts::tree_mults(n) as f64))
        .collect();
    let e = fit_exponent(&tree);
    assert!((1.7..2.3).contains(&e), "tree exponent {e}");
}

#[test]
fn beta_definition_matches_paper() {
    // β = 2m + 3·log₂ n + 2 (paper, after Eq 24)
    let b = sizes::beta(16, 10);
    assert!((b - (20.0 + 12.0 + 2.0)).abs() < 1e-9);
}
