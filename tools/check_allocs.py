#!/usr/bin/env python3
"""Gate the scratch-arena allocation reduction in results/BENCH_arena.json.

Dependency-free (stdlib json only). The file is written by

    cargo run --release -p rr-bench --bin alloc_ablation -- \
        --json results/BENCH_arena.json

and holds one row per (degree n, arena on|off) sequential solve, with the
physical limb-buffer allocation counters from `SolveStats::alloc`
(counted at the `rr_mp::scratch::take` sites: with the arena off every
take allocates, with it on only cold misses do).

Checks, per degree n present in the file:

* both an "on" and an "off" row exist;
* the off row actually exercised the rewritten paths
  (rem_allocs > 0 for n >= MIN_ACTIVE_N);
* remainder-phase reduction: off.rem_allocs >= MIN_RATIO * on.rem_allocs
  for every n >= GATE_N (an on-count of 0 passes trivially — ratios are
  recomputed from the raw counts, never read from the stored
  *_reduction fields, which serialize infinity as null);
* regression ceiling: on.total_allocs <= ON_TOTAL_CEILING — the arena's
  whole point is that a warm solve performs a handful of allocations,
  so a creeping on-count is a regression even while the ratio passes.

Usage: tools/check_allocs.py results/BENCH_arena.json
Exit status 0 iff the file passes.
"""

import json
import sys

# The ISSUE's acceptance bar: >= 5x fewer remainder-phase allocations
# at n >= 64.  MIN_ACTIVE_N guards against a silent no-op (a refactor
# that stops routing temporaries through scratch would make both counts
# 0 and pass any ratio).
GATE_N = 64
MIN_RATIO = 5.0
MIN_ACTIVE_N = 32
ON_TOTAL_CEILING = 256


def fail(msg):
    print(f"check_allocs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} <BENCH_arena.json>")

    with open(args[0], "rb") as f:
        doc = json.load(f)
    # Unified bench schema (see tools/check_bench.py): the rows live
    # under "series"; a bare array is the pre-unification layout.
    if isinstance(doc, dict):
        rows = doc.get("series")
    else:
        rows = doc
    if not isinstance(rows, list) or not rows:
        fail("no series rows (neither unified schema nor a bare array)")

    by_n = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"row {i} is not an object")
        for key in ("n", "arena", "rem_allocs", "total_allocs"):
            if key not in row:
                fail(f"row {i} missing {key!r}")
        arena = row["arena"]
        if arena not in ("on", "off"):
            fail(f"row {i}: arena is {arena!r}, want 'on' or 'off'")
        cell = by_n.setdefault(row["n"], {})
        if arena in cell:
            fail(f"duplicate ({row['n']}, {arena}) row")
        cell[arena] = row

    gated = 0
    for n in sorted(by_n):
        cell = by_n[n]
        if set(cell) != {"on", "off"}:
            fail(f"n={n}: need both on and off rows, have {sorted(cell)}")
        off, on = cell["off"], cell["on"]
        if n >= MIN_ACTIVE_N and off["rem_allocs"] == 0:
            fail(
                f"n={n}: off-row remainder phase performed no scratch "
                "allocations — the rewritten paths are not being exercised"
            )
        if n >= GATE_N:
            gated += 1
            if off["rem_allocs"] < MIN_RATIO * on["rem_allocs"]:
                ratio = off["rem_allocs"] / max(on["rem_allocs"], 1)
                fail(
                    f"n={n}: remainder-phase reduction {ratio:.2f}x "
                    f"< {MIN_RATIO}x (off={off['rem_allocs']}, "
                    f"on={on['rem_allocs']})"
                )
        if on["total_allocs"] > ON_TOTAL_CEILING:
            fail(
                f"n={n}: arena-on solve performed {on['total_allocs']} "
                f"allocations > ceiling {ON_TOTAL_CEILING} — reuse regressed"
            )
        ratio = (
            "inf"
            if on["rem_allocs"] == 0
            else f"{off['rem_allocs'] / on['rem_allocs']:.1f}"
        )
        print(
            f"check_allocs: n={n}: rem {off['rem_allocs']} -> "
            f"{on['rem_allocs']} ({ratio}x), total {off['total_allocs']} -> "
            f"{on['total_allocs']}"
        )
    if gated == 0:
        fail(f"no degree n >= {GATE_N} in the file — the gate never ran")
    print(f"check_allocs: OK ({len(by_n)} degrees, {gated} gated at n>={GATE_N})")


if __name__ == "__main__":
    main()
