#!/usr/bin/env python3
"""Validate and gate the unified bench artifacts in results/.

Dependency-free (stdlib json only). Every results/BENCH_*.json file
(and results/speedup_observed.json) shares one top-level schema,
written by rr_bench::schema::bench_doc:

    {
      "schema_version": 1,
      "commit": "<short git hash>",
      "config": { "bin": "<emitting binary>", ...effective args... },
      "series": [ { ...one row per measurement cell... } ]
    }

Modes:

  validate <files...>
      Structural check of the wrapper and every series row. Exit 0 iff
      all files conform.

  compare <baseline> <candidate> [--threshold 0.15]
      Regression gate over the *watched* fields — wall-clock seconds
      (``*_wall_s``/``*_secs``) and latency percentiles (``p50*``) —
      of rows matched across the two files by their identity key (all
      string-valued fields plus the standard grid keys: n, mu_digits,
      procs, solves, threads). A candidate value more than threshold
      (default 15%) above the baseline fails. Values below a noise
      floor (1e-4 s for seconds, 1000 for nanosecond percentiles) are
      skipped: timing jitter at that scale is not signal.

  selftest <file>
      Proves the gate can fire: synthesizes a +20% regression of every
      watched field of <file> in memory and asserts compare rejects it.

Exit status 0 iff the requested check passes.
"""

import json
import math
import sys

SCHEMA_VERSION = 1
KEY_FIELDS = ("n", "mu_digits", "procs", "solves", "threads")
DEFAULT_THRESHOLD = 0.15
# Noise floors: baselines below these are skipped by the comparator.
FLOOR_SECS = 1e-4
FLOOR_P50 = 1000.0  # percentile fields are nanoseconds


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{path}: {e}")


def validate_doc(path, doc):
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object (legacy bare array? "
             "re-emit with the current bench bins)")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version is {doc.get('schema_version')!r}, "
             f"want {SCHEMA_VERSION}")
    commit = doc.get("commit")
    if not isinstance(commit, str) or not commit:
        fail(f"{path}: commit must be a non-empty string")
    config = doc.get("config")
    if not isinstance(config, dict) or not isinstance(config.get("bin"), str):
        fail(f"{path}: config must be an object naming its emitting 'bin'")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail(f"{path}: series must be a non-empty array")
    for i, row in enumerate(series):
        if not isinstance(row, dict) or not row:
            fail(f"{path}: series[{i}] is not a non-empty object")
        for k, v in row.items():
            if isinstance(v, float) and not math.isfinite(v):
                fail(f"{path}: series[{i}].{k} is not finite")
            if isinstance(v, (dict, list)):
                # Distribution rows may carry histogram arrays; require
                # the elements to be finite numbers (or [level, value]
                # pairs).
                flat = v.values() if isinstance(v, dict) else v
                for item in flat:
                    for x in (item if isinstance(item, list) else [item]):
                        if not isinstance(x, (int, float)) or (
                            isinstance(x, float) and not math.isfinite(x)
                        ):
                            fail(f"{path}: series[{i}].{k} holds a "
                                 f"non-numeric nested value {x!r}")
    return config["bin"], len(series)


def watched(field):
    return field.endswith("_wall_s") or field.endswith("_secs") or field.startswith("p50")


def floor_for(field):
    return FLOOR_P50 if field.startswith("p50") else FLOOR_SECS


def row_key(row):
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or k in KEY_FIELDS:
            parts.append(f"{k}={v}")
    return "|".join(parts) or "<single>"


def compare_docs(base_doc, cand_doc, threshold, base_name, cand_name):
    base_rows = {row_key(r): r for r in base_doc["series"]}
    regressions = []
    checked = 0
    for row in cand_doc["series"]:
        key = row_key(row)
        base = base_rows.get(key)
        if base is None:
            continue
        for field, cand_v in row.items():
            if not watched(field) or not isinstance(cand_v, (int, float)):
                continue
            base_v = base.get(field)
            if not isinstance(base_v, (int, float)) or base_v < floor_for(field):
                continue
            checked += 1
            if cand_v > base_v * (1.0 + threshold):
                regressions.append(
                    f"  {key} .{field}: {base_v:.6g} -> {cand_v:.6g} "
                    f"(+{(cand_v / base_v - 1.0) * 100.0:.1f}% > {threshold * 100.0:.0f}%)"
                )
    print(f"check_bench: compared {checked} watched values "
          f"({base_name} -> {cand_name})")
    return regressions


def main():
    argv = sys.argv[1:]
    threshold = DEFAULT_THRESHOLD
    if "--threshold" in argv:
        i = argv.index("--threshold")
        threshold = float(argv[i + 1])
        del argv[i:i + 2]
    if not argv:
        fail("usage: check_bench.py validate <files...> | "
             "compare <baseline> <candidate> | selftest <file>")
    mode, args = argv[0], argv[1:]

    if mode == "validate":
        if not args:
            fail("validate: no files given")
        for path in args:
            bin_name, n = validate_doc(path, load(path))
            print(f"check_bench: {path}: OK ({bin_name}, {n} series rows)")
    elif mode == "compare":
        if len(args) != 2:
            fail("compare: need <baseline> <candidate>")
        base_doc, cand_doc = load(args[0]), load(args[1])
        validate_doc(args[0], base_doc)
        validate_doc(args[1], cand_doc)
        regressions = compare_docs(base_doc, cand_doc, threshold, args[0], args[1])
        if regressions:
            fail("p50/wall regressions over threshold:\n" + "\n".join(regressions))
        print("check_bench: OK (no watched regressions)")
    elif mode == "selftest":
        if len(args) != 1:
            fail("selftest: need <file>")
        doc = load(args[0])
        validate_doc(args[0], doc)
        regressed = json.loads(json.dumps(doc))
        inflatable = 0
        for row in regressed["series"]:
            for field, v in list(row.items()):
                if watched(field) and isinstance(v, (int, float)) and v >= floor_for(field):
                    row[field] = v * 1.20
                    inflatable += 1
        if inflatable == 0:
            fail(f"selftest: {args[0]} has no watched fields above the noise "
                 "floor — the gate would never fire on this artifact")
        regressions = compare_docs(doc, regressed, threshold, args[0], "+20% synthetic")
        if not regressions:
            fail("selftest: a synthetic +20% regression passed the gate")
        print(f"check_bench: selftest OK (gate caught {len(regressions)} of "
              f"{inflatable} synthetic +20% regressions)")
    else:
        fail(f"unknown mode {mode!r}")


if __name__ == "__main__":
    main()
