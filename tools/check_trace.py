#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file written by RR_TRACE / --trace.

Dependency-free (stdlib json only). Checks the subset of the format that
Perfetto and chrome://tracing rely on, plus this repo's conventions:

* top level: object with "displayTimeUnit" and a "traceEvents" array;
* every event: "ph" in {X, M, C}, pid == 1, numeric tid;
* "X" complete events: numeric ts/dur >= 0, string name, cat in
  {phase, stage, task};
* "M" metadata events: name == "thread_name" with args.name a string;
* "C" counter events: numeric args.value;
* task events: args.id and args.worker present, tid == 1000 + worker
  (the synthetic worker-track convention), and the track is named;
* at least one span for each pipeline stage of a traced solve.

With --report=<path>, additionally validates a solve-report JSON
(rr_bench::report_to_json): its "counters" object must summarize every
recorder counter series as {samples, max, min, last} with numeric
values and samples >= 1, and a report that carries pool statistics must
include the "queue-depth" series the scheduler emits.

Usage: tools/check_trace.py <trace.json> [--min-phases N] [--report=<report.json>]
Exit status 0 iff the file (and the report, if given) passes.
"""

import json
import sys

WORKER_TRACK_BASE = 1000
REQUIRED_STAGES = {"solve", "remainder-stage", "tree-stage"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_report(path):
    """Validate the counter summaries of a report_to_json document."""
    with open(path, "rb") as f:
        report = json.load(f)
    if not isinstance(report, dict):
        fail(f"{path}: report is not an object")
    counters = report.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: report has no 'counters' object")
    for name, summary in counters.items():
        if not isinstance(summary, dict):
            fail(f"{path}: counter {name!r} summary is not an object")
        for key in ("samples", "max", "min", "last"):
            v = summary.get(key)
            if not isinstance(v, (int, float)):
                fail(f"{path}: counter {name!r}.{key} is {v!r}, want a number")
        if summary["samples"] < 1:
            fail(f"{path}: counter {name!r} has no samples")
        if summary["min"] > summary["max"]:
            fail(f"{path}: counter {name!r} min {summary['min']} > max {summary['max']}")
    if isinstance(report.get("pool"), dict) and "queue-depth" not in counters:
        fail(f"{path}: pool-backed report is missing the 'queue-depth' counter")
    print(f"check_trace: report OK: {len(counters)} counter series "
          f"({', '.join(sorted(counters))})")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} <trace.json> [--min-phases N] [--report=<report.json>]")
    min_phases = 1
    report_path = None
    for a in sys.argv[1:]:
        if a.startswith("--min-phases="):
            min_phases = int(a.split("=", 1)[1])
        elif a.startswith("--report="):
            report_path = a.split("=", 1)[1]

    with open(args[0], "rb") as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"bad displayTimeUnit {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_tracks = set()
    counts = {"X": 0, "M": 0, "C": 0}
    cats = {}
    stage_names = set()
    phase_names = set()
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in counts:
            fail(f"{where}: unexpected ph {ph!r}")
        counts[ph] += 1
        if ev.get("pid") != 1:
            fail(f"{where}: pid {ev.get('pid')!r} != 1")
        if not isinstance(ev.get("tid"), int):
            fail(f"{where}: non-integer tid {ev.get('tid')!r}")
        if ph == "M":
            if ev.get("name") != "thread_name":
                fail(f"{where}: M event named {ev.get('name')!r}")
            if not isinstance(ev.get("args", {}).get("name"), str):
                fail(f"{where}: thread_name without args.name")
            named_tracks.add(ev["tid"])
        elif ph == "C":
            v = ev.get("args", {}).get("value")
            if not isinstance(v, (int, float)):
                fail(f"{where}: counter without numeric args.value")
        else:  # X
            for k in ("ts", "dur"):
                v = ev.get(k)
                if not isinstance(v, (int, float)) or v < 0:
                    fail(f"{where}: bad {k} {v!r}")
            if not isinstance(ev.get("name"), str):
                fail(f"{where}: X event without name")
            cat = ev.get("cat")
            if cat not in ("phase", "stage", "task"):
                fail(f"{where}: unexpected cat {cat!r}")
            cats[cat] = cats.get(cat, 0) + 1
            if cat == "stage":
                stage_names.add(ev["name"])
            if cat == "phase":
                phase_names.add(ev["name"])
            if cat == "task":
                a = ev.get("args", {})
                if not isinstance(a.get("id"), int):
                    fail(f"{where}: task without integer args.id")
                w = a.get("worker")
                if not isinstance(w, int):
                    fail(f"{where}: task without integer args.worker")
                if ev["tid"] != WORKER_TRACK_BASE + w:
                    fail(f"{where}: task tid {ev['tid']} != {WORKER_TRACK_BASE}+{w}")
                if ev["tid"] not in named_tracks:
                    fail(f"{where}: task on unnamed track {ev['tid']}")

    if counts["X"] == 0:
        fail("no X (duration) events")
    if counts["M"] == 0:
        fail("no M (thread_name) events")
    missing = REQUIRED_STAGES - stage_names
    if missing:
        fail(f"missing stage spans: {sorted(missing)}")
    if len(phase_names) < min_phases:
        fail(f"only {len(phase_names)} phase names, need {min_phases}: {sorted(phase_names)}")

    print(
        f"check_trace: OK: {len(events)} events "
        f"({counts['X']} spans: {cats}, {counts['M']} track names, "
        f"{counts['C']} counter samples), phases {sorted(phase_names)}"
    )
    if report_path is not None:
        check_report(report_path)


if __name__ == "__main__":
    main()
